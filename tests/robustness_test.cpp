// Failure-injection and edge-condition tests across the stack: lossy
// links, zero-rate outages, pathological traces, and adversarial inputs.

#include <gtest/gtest.h>

#include "core/mpdash_socket.h"
#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "http/client.h"
#include "http/server.h"
#include "mptcp/connection.h"
#include "trace/generators.h"

namespace mpdash {
namespace {

Video tiny_video() {
  return Video("Tiny", seconds(4.0), 12,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, 3);
}

TEST(Robustness, StreamSurvivesRandomPacketLoss) {
  ScenarioConfig cfg =
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(6.0));
  cfg.random_loss = 0.01;  // 1 % i.i.d. loss on every link
  cfg.seed = 123;          // each link draws from its own derived stream
  Scenario scenario(cfg);

  SessionConfig scfg;
  scfg.adaptation = "festive";
  scfg.scheme = Scheme::kMpDashRate;
  const SessionResult res =
      run_streaming_session(scenario, tiny_video(), scfg);
  ASSERT_TRUE(res.completed);
  // Loss costs retransmissions, not correctness.
  EXPECT_EQ(res.chunks, 12);
}

TEST(Robustness, StreamSurvivesBurstyWifiLoss) {
  // Gilbert–Elliott bursts on the WiFi downlink: ~100-packet clean spells
  // interrupted by ~5-packet bursts where 90 % of packets die.
  ScenarioConfig cfg =
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(6.0));
  cfg.wifi_ge_loss = GilbertElliottConfig{};
  cfg.seed = 7;
  Scenario scenario(cfg);

  SessionConfig scfg;
  scfg.adaptation = "festive";
  scfg.scheme = Scheme::kMpDashRate;
  const SessionResult res =
      run_streaming_session(scenario, tiny_video(), scfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.chunks, 12);
  // The bursts actually bit: the WiFi downlink recorded drops.
  EXPECT_GT(scenario.wifi().downlink().dropped_packets(), 0u);
}

TEST(Robustness, WifiBlackoutMidSessionCellularRescues) {
  // WiFi dies completely from t=30..60 s; MP-DASH must lean on LTE and
  // keep the stream alive.
  std::vector<RatePoint> pts{
      {kTimeZero, DataRate::mbps(5.0)},
      {TimePoint(seconds(30.0)), DataRate::kbps(1.0)},
      {TimePoint(seconds(60.0)), DataRate::mbps(5.0)},
  };
  ScenarioConfig cfg;
  cfg.wifi_down = BandwidthTrace(pts);
  cfg.lte_down = BandwidthTrace::constant(DataRate::mbps(5.0));
  Scenario scenario(cfg);

  SessionConfig scfg;
  scfg.adaptation = "festive";
  scfg.scheme = Scheme::kMpDashRate;
  const SessionResult res =
      run_streaming_session(scenario, tiny_video(), scfg);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.cell_bytes, megabytes(1));  // LTE carried the blackout
}

TEST(Robustness, BothPathsDieSessionHitsTimeLimitGracefully) {
  std::vector<RatePoint> dead{
      {kTimeZero, DataRate::mbps(5.0)},
      {TimePoint(seconds(10.0)), DataRate::bits_per_second(10.0)},
  };
  ScenarioConfig cfg;
  cfg.wifi_down = BandwidthTrace(dead);
  cfg.lte_down = BandwidthTrace(dead);
  Scenario scenario(cfg);
  SessionConfig scfg;
  scfg.adaptation = "gpac";
  scfg.time_limit = seconds(60.0);
  const SessionResult res =
      run_streaming_session(scenario, tiny_video(), scfg);
  EXPECT_FALSE(res.completed);  // but no crash, no hang
}

TEST(Robustness, ServerRespondsToUnknownTargets) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(),
                    [](const HttpRequest&) { return not_found(); });
  HttpClient client(scenario.loop(), conn.client());
  int status = 0;
  client.get("/nope", [&](const HttpTransfer& t) { status = t.response.status; });
  scenario.loop().run();
  EXPECT_EQ(status, 404);
}

TEST(Robustness, ManyTinyResponsesKeepFraming) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "payload-for-" + req.target;
    return resp;
  });
  HttpClient client(scenario.loop(), conn.client());
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string target = "/t" + std::to_string(i);
    client.get(target, [&completed, target](const HttpTransfer& t) {
      EXPECT_EQ(t.body, "payload-for-" + target);
      ++completed;
    });
  }
  scenario.loop().run();
  EXPECT_EQ(completed, 100);
}

TEST(Robustness, MpDashSocketReenableWhileActive) {
  // Re-enabling mid-transfer (a new chunk before the old one's window
  // closed) must not corrupt accounting.
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  MpDashSocket socket(scenario.loop(), conn);
  socket.enable(megabytes(1), seconds(5.0));
  EXPECT_TRUE(socket.active());
  socket.enable(megabytes(2), seconds(8.0));  // restart
  EXPECT_TRUE(socket.active());
  EXPECT_EQ(socket.scheduler().target_bytes(), megabytes(2));
  socket.disable();
  EXPECT_FALSE(socket.active());
  // Idempotent disable.
  socket.disable();
  EXPECT_FALSE(socket.active());
}

TEST(Robustness, ExtremeBandwidthAsymmetry) {
  // 50 Mbps WiFi vs 0.2 Mbps LTE and vice versa: both stream cleanly.
  for (auto [wifi, lte] : {std::pair{50.0, 0.2}, std::pair{0.7, 20.0}}) {
    Scenario scenario(
        constant_scenario(DataRate::mbps(wifi), DataRate::mbps(lte)));
    SessionConfig cfg;
    cfg.adaptation = "festive";
    cfg.scheme = Scheme::kMpDashRate;
    cfg.time_limit = seconds(900.0);
    const SessionResult res =
        run_streaming_session(scenario, tiny_video(), cfg);
    EXPECT_TRUE(res.completed) << wifi << "/" << lte;
  }
}

TEST(Robustness, VeryShortChunks) {
  const Video v("Short chunks", seconds(1.0), 30,
                {DataRate::mbps(0.58), DataRate::mbps(3.94)}, 0.12, 5);
  Scenario scenario(
      constant_scenario(DataRate::mbps(4.0), DataRate::mbps(3.0)));
  SessionConfig cfg;
  cfg.adaptation = "festive";
  cfg.scheme = Scheme::kMpDashRate;
  cfg.player.startup_buffer = seconds(2.0);
  const SessionResult res = run_streaming_session(scenario, v, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.stalls, 0);
}

}  // namespace
}  // namespace mpdash
