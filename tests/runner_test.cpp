// Determinism proofs for the campaign runner (src/runner): parallel
// execution must be bitwise-identical to serial, failures must stay
// isolated to their own run, and seed derivation must be stable under
// campaign edits. These are the guarantees every parallel bench relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exp/scenario.h"
#include "exp/session.h"
#include "runner/campaign.h"
#include "runner/thread_pool.h"
#include "util/stats.h"

using namespace mpdash;

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);

  // The pool stays usable after wait_idle().
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, WaitIdleWaitsForInflightTasks) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      count.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ResolveJobs, RequestedWinsAndAutoIsPositive) {
  EXPECT_EQ(resolve_jobs(4), 4);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
}

TEST(SeedDerivation, DependsOnCampaignSeedAndKeyOnly) {
  EXPECT_EQ(derive_run_seed(1, "a"), derive_run_seed(1, "a"));
  EXPECT_NE(derive_run_seed(1, "a"), derive_run_seed(2, "a"));
  EXPECT_NE(derive_run_seed(1, "a"), derive_run_seed(1, "b"));
  // Near-identical keys must land far apart (finalizer mixing).
  EXPECT_NE(derive_run_seed(1, "run-10") ^ derive_run_seed(1, "run-11"), 0u);
}

// Inserting a run must not reseed its neighbors: seeds derive from the
// run key, never from the position in the campaign.
TEST(SeedDerivation, InsertingARunDoesNotReseedNeighbors) {
  auto seeds_of = [](const std::vector<std::string>& keys) {
    Campaign<int> campaign("stability");
    for (const auto& k : keys) {
      campaign.add(k, [](RunContext&) { return 0; });
    }
    CampaignOptions opts;
    opts.jobs = 1;
    opts.progress = nullptr;
    const auto res = campaign.run(opts);
    std::vector<std::pair<std::string, std::uint64_t>> seeds;
    for (const auto& r : res.reports) seeds.emplace_back(r.key, r.seed);
    return seeds;
  };

  const auto before = seeds_of({"r00", "r01", "r02", "r03"});
  const auto after = seeds_of({"r00", "r01", "extra", "r02", "r03"});
  for (const auto& [key, seed] : before) {
    bool found = false;
    for (const auto& [k2, s2] : after) {
      if (k2 == key) {
        EXPECT_EQ(s2, seed) << "run '" << key << "' was reseeded";
        found = true;
      }
    }
    EXPECT_TRUE(found) << key;
  }
}

TEST(Campaign, ResultsStayInAddOrderUnderManyJobs) {
  Campaign<int> campaign("ordering");
  for (int i = 0; i < 24; ++i) {
    campaign.add("run-" + std::to_string(i), [i](RunContext&) {
      // Scramble completion order: early runs finish last.
      std::this_thread::sleep_for(std::chrono::milliseconds((24 - i) % 5));
      return i;
    });
  }
  CampaignOptions opts;
  opts.jobs = 8;
  opts.progress = nullptr;
  const auto res = campaign.run(opts);
  ASSERT_EQ(res.results.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(res.results[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(res.reports[static_cast<std::size_t>(i)].key,
              "run-" + std::to_string(i));
  }
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.stats.runs, 24);
  EXPECT_EQ(res.stats.jobs, 8);
  EXPECT_GT(res.stats.wall_s, 0.0);
  EXPECT_GT(res.stats.run_wall_sum_s, 0.0);
}

// One throwing run reports and continues; it never poisons the rest.
TEST(Campaign, FailureIsolation) {
  Campaign<int> campaign("failures");
  for (int i = 0; i < 10; ++i) {
    campaign.add("run-" + std::to_string(i), [i](RunContext&) {
      if (i == 3) throw std::runtime_error("boom 3");
      if (i == 7) throw 42;  // non-std exception
      return i + 1;
    });
  }
  CampaignOptions opts;
  opts.jobs = 4;
  opts.progress = nullptr;
  const auto res = campaign.run(opts);

  EXPECT_FALSE(res.all_ok());
  EXPECT_EQ(res.stats.failures, 2);
  EXPECT_FALSE(res.reports[3].ok);
  EXPECT_NE(res.reports[3].error.find("boom 3"), std::string::npos);
  EXPECT_FALSE(res.reports[7].ok);
  EXPECT_EQ(res.reports[7].error, "unknown exception");
  // Failed runs keep the default-constructed result.
  EXPECT_EQ(res.results[3], 0);
  EXPECT_EQ(res.results[7], 0);
  for (int i = 0; i < 10; ++i) {
    if (i == 3 || i == 7) continue;
    EXPECT_TRUE(res.reports[static_cast<std::size_t>(i)].ok);
    EXPECT_EQ(res.results[static_cast<std::size_t>(i)], i + 1);
  }
  EXPECT_THROW(res.require_all_ok(), std::runtime_error);
}

namespace {

// A 20-run mini-campaign of real deadline downloads whose network rates
// derive from each run's seed. Returns (per-run serialization, aggregate
// CDF serialization) — both must be byte-identical for any job count.
struct MiniRun {
  std::string serialized;
  double finish_s = 0.0;
};

std::pair<std::string, std::string> run_mini_campaign(int jobs) {
  Campaign<MiniRun> campaign("mini", 7);
  for (int i = 0; i < 20; ++i) {
    campaign.add("dl-" + std::to_string(i), [](RunContext& ctx) {
      Rng rng = ctx.rng();
      const double wifi = 1.5 + 3.0 * rng.uniform();
      const double lte = 1.0 + 2.0 * rng.uniform();
      Scenario scenario(constant_scenario(DataRate::mbps(wifi),
                                          DataRate::mbps(lte)));
      DownloadConfig cfg;
      cfg.size = kilobytes(600);
      cfg.deadline = seconds(3.0);
      cfg.telemetry = &ctx.telemetry;  // private per-run metrics
      const DownloadResult res = run_download_session(scenario, cfg);

      MiniRun out;
      out.finish_s = to_seconds(res.finish_time);
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s seed=%016llx finish=%.17g wifi=%lld cell=%lld "
                    "miss=%d energy=%.17g\n",
                    ctx.key.c_str(),
                    static_cast<unsigned long long>(ctx.seed), out.finish_s,
                    static_cast<long long>(res.wifi_bytes),
                    static_cast<long long>(res.cell_bytes),
                    res.deadline_missed ? 1 : 0, res.energy_j());
      out.serialized =
          buf +
          ctx.telemetry.metrics().snapshot(TimePoint(res.finish_time))
              .to_json() +
          "\n";
      return out;
    });
  }
  CampaignOptions opts;
  opts.jobs = jobs;
  opts.progress = nullptr;
  auto res = campaign.run(opts);
  res.require_all_ok();

  std::string per_run;
  std::vector<double> finishes;
  for (const MiniRun& r : res.results) {
    per_run += r.serialized;
    finishes.push_back(r.finish_s);
  }
  std::string cdf;
  for (const auto& [v, f] : empirical_cdf(finishes)) {
    char buf[80];
    std::snprintf(buf, sizeof buf, "%.17g %.17g\n", v, f);
    cdf += buf;
  }
  return {per_run, cdf};
}

}  // namespace

// The determinism proof: per-run metrics and the aggregate CDF are
// byte-identical between serial and 8-way execution.
TEST(Campaign, ParallelExecutionIsBitwiseIdenticalToSerial) {
  const auto serial = run_mini_campaign(1);
  const auto parallel = run_mini_campaign(8);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_FALSE(serial.second.empty());
  // And the campaign is rerun-stable, not just order-stable.
  const auto again = run_mini_campaign(8);
  EXPECT_EQ(parallel.first, again.first);
}
