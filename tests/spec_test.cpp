// SessionSpec: the canonical session description and its resolution into
// the runtime views. Covers the canonical-JSON contract (serialize →
// parse → re-serialize is bitwise stable), malformed-input rejection with
// field-precise errors, resolve_session_config/resolve_scenario_config
// correctness, and the schema-1 repro-bundle compatibility path (old flat
// bundles still load, map into a spec, and replay identically).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chaos.h"
#include "exp/repro.h"
#include "exp/spec.h"
#include "fault/fault.h"
#include "fault/fault_json.h"
#include "telemetry/telemetry.h"

namespace mpdash {
namespace {

SessionSpec sample_spec() {
  SessionSpec s;
  s.scheme = Scheme::kMpDashRate;
  s.adaptation = "bba";
  s.mptcp_scheduler = "roundrobin";
  s.alpha = 0.1 + 0.2;  // awkward double, must round-trip bitwise
  s.debounce_ticks = 3;
  s.scenario.wifi_mbps = 3.8;
  s.scenario.lte_mbps = 2.5;
  s.inflight = 3;
  s.max_chunk_attempts = 5;
  s.buffer_capacity_s = 30.0;
  s.startup_buffer_s = 4.0;
  s.recovery = false;
  s.time_limit = seconds(123.5);
  s.watchdog = {1000, 2.5};
  return s;
}

// --- canonical JSON ------------------------------------------------------

TEST(SessionSpecJson, DefaultAndSampleSpecsRoundTripBitwise) {
  for (const SessionSpec& spec : {SessionSpec{}, sample_spec()}) {
    const std::string text = session_spec_to_json(spec);
    SessionSpec parsed;
    std::string err;
    ASSERT_TRUE(session_spec_from_json(text, &parsed, &err)) << err;
    EXPECT_EQ(parsed, spec);
    // serialize -> parse -> re-serialize is byte-identical.
    EXPECT_EQ(session_spec_to_json(parsed), text);
  }
}

TEST(SessionSpecJson, IsOneCanonicalLine) {
  const std::string text = session_spec_to_json(SessionSpec{});
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  // Spot-check the fixed field order the bundle format depends on.
  EXPECT_LT(text.find("\"scheme\""), text.find("\"adaptation\""));
  EXPECT_LT(text.find("\"adaptation\""), text.find("\"scenario\""));
  EXPECT_LT(text.find("\"recovery\""), text.find("\"watchdog\""));
}

TEST(SessionSpecJson, RejectsMalformedInputWithFieldErrors) {
  SessionSpec spec;
  std::string err;
  EXPECT_FALSE(session_spec_from_json("", &spec, &err));
  EXPECT_FALSE(session_spec_from_json("[]", &spec, &err));
  EXPECT_EQ(err, "spec: not an object");

  // Dropping or mistyping any single field names that field in the error.
  const struct {
    const char* needle;       // substring to corrupt out of the document
    const char* replacement;  // what to splice in
    const char* want;         // expected error suffix
  } cases[] = {
      {"\"scheme\": \"mpdash-rate\"", "\"scheme\": \"nope\"", "scheme"},
      {"\"adaptation\": \"bba\"", "\"adaptation\": 7", "adaptation"},
      {"\"alpha\": ", "\"alpha_gone\": ", "alpha"},
      {"\"recovery\": false", "\"recovery\": \"no\"", "recovery"},
      {"\"wifi_mbps\": ", "\"wifi\": ", "scenario.wifi_mbps"},
      {"\"max_wall_s\": ", "\"wall\": ", "watchdog.max_wall_s"},
  };
  const std::string good = session_spec_to_json(sample_spec());
  for (const auto& c : cases) {
    std::string bad = good;
    const std::size_t pos = bad.find(c.needle);
    ASSERT_NE(pos, std::string::npos) << c.needle;
    bad.replace(pos, std::string(c.needle).size(), c.replacement);
    err.clear();
    EXPECT_FALSE(session_spec_from_json(bad, &spec, &err)) << c.want;
    EXPECT_EQ(err, std::string("spec: missing or bad \"") + c.want + "\"");
  }
}

TEST(SessionSpecJson, SchemeNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Scheme::kMpDashRate); ++i) {
    const Scheme s = static_cast<Scheme>(i);
    Scheme parsed;
    ASSERT_TRUE(scheme_from_string(to_string(s), &parsed)) << to_string(s);
    EXPECT_EQ(parsed, s);
  }
  Scheme out;
  EXPECT_FALSE(scheme_from_string("", &out));
  EXPECT_FALSE(scheme_from_string("mpdash", &out));
}

// --- resolution ----------------------------------------------------------

TEST(SessionSpecResolve, MapsEveryKnobIntoTheRuntimeViews) {
  const SessionSpec spec = sample_spec();
  const SessionConfig cfg = resolve_session_config(spec, 42);
  EXPECT_EQ(cfg.scheme, spec.scheme);
  EXPECT_EQ(cfg.adaptation, spec.adaptation);
  EXPECT_EQ(cfg.mptcp_scheduler, spec.mptcp_scheduler);
  EXPECT_EQ(cfg.alpha, spec.alpha);
  EXPECT_EQ(cfg.debounce_ticks, spec.debounce_ticks);
  EXPECT_EQ(cfg.time_limit, spec.time_limit);
  EXPECT_EQ(cfg.player.max_inflight_chunks, spec.inflight);
  EXPECT_EQ(cfg.player.max_chunk_attempts, spec.max_chunk_attempts);
  EXPECT_EQ(cfg.player.buffer_capacity, seconds(spec.buffer_capacity_s));
  EXPECT_EQ(cfg.player.startup_buffer, seconds(spec.startup_buffer_s));
  EXPECT_EQ(cfg.watchdog.max_sim_events, spec.watchdog.max_sim_events);
  EXPECT_EQ(cfg.watchdog.max_wall_s, spec.watchdog.max_wall_s);

  // recovery=false leaves the recovery stack at inert defaults.
  EXPECT_EQ(cfg.http_recovery.max_retries, HttpClientConfig{}.max_retries);

  const ScenarioConfig net = resolve_scenario_config(spec, 42);
  EXPECT_EQ(net.wifi_down.rate_at(kTimeZero), DataRate::mbps(3.8));
  EXPECT_EQ(net.lte_down.rate_at(kTimeZero), DataRate::mbps(2.5));
  EXPECT_EQ(net.seed, derive_stream_seed(42, "links"));
}

TEST(SessionSpecResolve, RecoveryExpandsWithSeedDerivedJitter) {
  SessionSpec spec;  // recovery = true by default
  const SessionConfig a = resolve_session_config(spec, 7);
  EXPECT_EQ(a.mptcp_recovery.max_consecutive_rtos, 4);
  EXPECT_EQ(a.mptcp_recovery.reprobe_interval, seconds(2.0));
  EXPECT_EQ(a.http_recovery.request_timeout, seconds(4.0));
  EXPECT_EQ(a.http_recovery.max_retries, 4);
  EXPECT_EQ(a.http_recovery.jitter_seed, derive_stream_seed(7, "http-jitter"));
  // Different run seed, different jitter stream — resolution is seeded.
  const SessionConfig b = resolve_session_config(spec, 8);
  EXPECT_NE(a.http_recovery.jitter_seed, b.http_recovery.jitter_seed);
}

TEST(SessionSpecResolve, InflightIsClampedToSequentialMinimum) {
  SessionSpec spec;
  spec.inflight = 0;
  EXPECT_EQ(resolve_session_config(spec, 1).player.max_inflight_chunks, 1);
}

// --- schema-1 repro-bundle compatibility ---------------------------------

FaultPlan blackout_plan() {
  FaultEvent e;
  e.kind = FaultKind::kBlackout;
  e.at = kTimeZero + seconds(4.0);
  e.duration = seconds(3.0);
  e.path_id = 0;  // WiFi
  FaultPlan plan;
  plan.events.push_back(e);
  return plan;
}

// A schema-1 bundle as the campaign used to write it: session knobs as
// flat top-level fields, no embedded spec object.
std::string schema1_bundle_text(const ChaosRunResult& run,
                                const FaultPlan& plan) {
  std::string out = "{\n";
  out += "\"schema\": 1,\n";
  out += "\"kind\": \"mpdash-repro\",\n";
  out += "\"seed\": " + std::to_string(run.seed) + ",\n";
  out += "\"scheme\": \"mpdash-duration\",\n";
  out += "\"adaptation\": \"festive\",\n";
  out += "\"mptcp_scheduler\": \"minrtt\",\n";
  out += "\"inflight\": 1,\n";
  out += "\"recovery\": true,\n";
  out += "\"time_limit_ns\": " + std::to_string(seconds(600.0).count()) +
         ",\n";
  out += "\"watchdog\": {\"max_sim_events\": 0, \"max_wall_s\": 0, "
         "\"poll_interval\": 4096},\n";
  out += "\"chunk_count\": 8,\n";
  out += "\"plan\": " + fault_plan_to_json(plan) + ",\n";
  out += "\"outcome\": " + json_quote(to_string(run.outcome)) + ",\n";
  out += "\"hung_reason\": \"\",\n";
  out += "\"expected_violations\": [";
  for (std::size_t i = 0; i < run.violations.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += json_quote(run.violations[i]);
  }
  if (!run.violations.empty()) out += "\n";
  out += "]\n}\n";
  return out;
}

TEST(ReproBundleCompat, Schema1FlatFieldsMapIntoTheSpec) {
  // Record what the defaults-spec run actually observes, then express it
  // in the old flat layout and check the loader reconstructs the spec.
  ChaosConfig cfg;
  cfg.chunk_count = 8;
  cfg.progress = nullptr;
  const FaultPlan plan = blackout_plan();
  Telemetry telemetry;
  const ChaosRunResult run =
      run_chaos_single(cfg, chaos_video(cfg), 11, plan, telemetry);

  const std::string text = schema1_bundle_text(run, plan);
  ReproBundle parsed;
  std::string err;
  ASSERT_TRUE(repro_bundle_from_json(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.schema, 1);
  EXPECT_EQ(parsed.seed, run.seed);
  EXPECT_EQ(parsed.chunk_count, 8);
  // The flat fields land in the embedded spec; unlisted fields keep the
  // chaos-era defaults — which is exactly SessionSpec{}.
  EXPECT_EQ(parsed.spec, SessionSpec{});

  // Re-serializing writes the *current* schema with the embedded spec,
  // and that form round-trips bitwise.
  const std::string upgraded = repro_bundle_to_json(parsed);
  EXPECT_NE(upgraded.find("\"schema\": 2"), std::string::npos);
  ReproBundle again;
  ASSERT_TRUE(repro_bundle_from_json(upgraded, &again, &err)) << err;
  EXPECT_EQ(again.spec, parsed.spec);
  EXPECT_EQ(repro_bundle_to_json(again), upgraded);
}

TEST(ReproBundleCompat, Schema1BundleReplaysIdentically) {
  ChaosConfig cfg;
  cfg.chunk_count = 8;
  cfg.progress = nullptr;
  const FaultPlan plan = blackout_plan();
  Telemetry telemetry;
  const ChaosRunResult run =
      run_chaos_single(cfg, chaos_video(cfg), 11, plan, telemetry);

  ReproBundle parsed;
  std::string err;
  ASSERT_TRUE(
      repro_bundle_from_json(schema1_bundle_text(run, plan), &parsed, &err))
      << err;
  const ReplayResult replay = replay_repro_bundle(parsed);
  EXPECT_TRUE(replay.matches) << (replay.mismatches.empty()
                                      ? ""
                                      : replay.mismatches.front());
  EXPECT_EQ(replay.run.outcome, run.outcome);
  EXPECT_EQ(replay.run.violations, run.violations);
}

TEST(ReproBundleCompat, UnsupportedSchemaIsRejected) {
  ReproBundle b;
  const std::string text = repro_bundle_to_json(b);
  std::string bad = text;
  const std::size_t pos = bad.find("\"schema\": 2");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 11, "\"schema\": 3");
  ReproBundle parsed;
  std::string err;
  EXPECT_FALSE(repro_bundle_from_json(bad, &parsed, &err));
  EXPECT_EQ(err, "bundle: unsupported schema 3");
}

}  // namespace
}  // namespace mpdash
