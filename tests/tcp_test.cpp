#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "link/link.h"
#include "mptcp/wire_data.h"
#include "sim/event_loop.h"
#include "tcp/subflow.h"

namespace mpdash {
namespace {

// A loopback harness: data packets cross a forward Link, the "receiver"
// acks each delivery across a reverse Link back into the sender.
struct Harness {
  EventLoop loop;
  Link fwd;
  Link rev;
  SubflowSender sender;
  Bytes received = 0;
  std::uint64_t highest_seq = 0;

  explicit Harness(DataRate rate, Bytes queue = 192'000,
                   Duration delay = milliseconds(25))
      : fwd(loop, LinkConfig{.id = 0,
                             .rate = BandwidthTrace::constant(rate),
                             .propagation_delay = delay,
                             .queue_capacity = queue}),
        rev(loop,
            LinkConfig{.id = 1,
                       .rate = BandwidthTrace::constant(DataRate::mbps(50)),
                       .propagation_delay = delay,
                       .queue_capacity = 10'000'000}),
        sender(
            loop, SubflowConfig{},
            [this](Packet p) { fwd.send(std::move(p)); },
            [this] { pump(); }) {
    fwd.set_deliver_handler([this](Packet p) {
      received += p.payload_len;
      highest_seq = std::max(highest_seq, p.subflow_seq);
      Packet ack;
      ack.kind = PacketKind::kAck;
      ack.wire_size = kAckWireSize;
      ack.ack_subflow_seq = p.subflow_seq;
      ack.echo_sent_at = p.sent_at;
      ack.echo_is_retransmit = p.is_retransmit;
      rev.send(std::move(ack));
    });
    rev.set_deliver_handler([this](Packet p) { sender.on_ack(p); });
  }

  Bytes to_send = 0;
  void pump() {
    while (to_send > 0 && sender.can_send()) {
      const Bytes n = std::min<Bytes>(to_send, kMaxSegmentSize);
      sender.send_data(next_seq, n, wire_virtual(n));
      next_seq += static_cast<std::uint64_t>(n);
      to_send -= n;
    }
  }
  std::uint64_t next_seq = 0;

  void transfer(Bytes total) {
    to_send = total;
    pump();
    loop.run();
  }
};

TEST(Subflow, SlowStartDoublesCwnd) {
  Harness h(DataRate::mbps(50.0));
  h.transfer(100 * kMaxSegmentSize);
  // No losses: still in slow start, cwnd grew by 1 per acked packet.
  EXPECT_NEAR(h.sender.cwnd(), 10.0 + 100.0, 1.0);
  EXPECT_EQ(h.sender.retransmissions(), 0u);
  EXPECT_EQ(h.received, 100 * kMaxSegmentSize);
}

TEST(Subflow, RttEstimateTracksPathRtt) {
  Harness h(DataRate::mbps(50.0));
  h.transfer(50 * kMaxSegmentSize);
  // Base RTT 50 ms plus small serialization delays.
  EXPECT_NEAR(to_milliseconds(h.sender.srtt()), 50.0, 10.0);
}

TEST(Subflow, RecoversFromQueueOverflow) {
  // Slow link + small queue: slow-start overshoot loses a window tail.
  Harness h(DataRate::mbps(3.8), /*queue=*/60'000);
  h.transfer(400 * kMaxSegmentSize);
  EXPECT_EQ(h.received, 400 * kMaxSegmentSize);  // retransmits fill gaps
  EXPECT_GT(h.sender.retransmissions(), 0u);
  // Congestion control reacted.
  EXPECT_LT(h.sender.ssthresh(), 1e8);
  // Transfer completed in bounded time (560 KB at 3.8 Mbps ~ 1.2 s ideal).
  EXPECT_LT(to_seconds(h.loop.now()), 10.0);
}

TEST(Subflow, AllBytesDeliveredUnderRandomLoss) {
  Harness h(DataRate::mbps(10.0), 500'000);
  // 2 % random loss via a deterministic pattern.
  int k = 0;
  h.fwd.set_loss_rng([&k] { return (++k % 50 == 0) ? 0.0 : 0.9; });
  // Enable random loss on the forward link.
  // (LinkConfig had 0; rebuild harness config through a fresh link is
  // intrusive — instead send enough data that queue drops occur anyway.)
  h.transfer(300 * kMaxSegmentSize);
  EXPECT_EQ(h.received, 300 * kMaxSegmentSize);
}

TEST(Subflow, RtoFiresWhenAllAcksLost) {
  EventLoop loop;
  int transmitted = 0;
  SubflowSender sender(
      loop, SubflowConfig{}, [&](Packet) { ++transmitted; }, [] {});
  sender.send_data(0, 1000, wire_virtual(1000));
  EXPECT_EQ(transmitted, 1);
  loop.run_until(TimePoint(seconds(10.0)));
  // RTO retransmissions with backoff: several, not hundreds.
  EXPECT_GE(sender.timeouts(), 2u);
  EXPECT_LE(sender.timeouts(), 8u);
  EXPECT_EQ(sender.cwnd(), 1.0);
}

TEST(Subflow, IdleRestartResetsCwnd) {
  Harness h(DataRate::mbps(50.0));
  h.transfer(200 * kMaxSegmentSize);
  const double grown = h.sender.cwnd();
  EXPECT_GT(grown, 100.0);
  // Idle well past the RTO, then send again: cwnd restarts at IW.
  h.loop.run_until(h.loop.now() + seconds(30.0));
  h.transfer(kMaxSegmentSize);
  EXPECT_LE(h.sender.cwnd(), 12.0);
}

TEST(Subflow, CanSendRespectsCwnd) {
  EventLoop loop;
  SubflowSender sender(
      loop, SubflowConfig{}, [](Packet) {}, [] {});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(sender.can_send());
    sender.send_data(static_cast<std::uint64_t>(i) * 100, 100,
                     wire_virtual(100));
  }
  EXPECT_FALSE(sender.can_send());  // IW10 exhausted, no acks
  EXPECT_EQ(sender.inflight_packets(), 10u);
}

TEST(Subflow, DuplicateAcksIgnored) {
  EventLoop loop;
  std::deque<Packet> wire;
  SubflowSender sender(
      loop, SubflowConfig{}, [&](Packet p) { wire.push_back(p); }, [] {});
  sender.send_data(0, 1000, wire_virtual(1000));
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.ack_subflow_seq = wire.front().subflow_seq;
  ack.echo_sent_at = wire.front().sent_at;
  sender.on_ack(ack);
  const double cwnd_after_first = sender.cwnd();
  sender.on_ack(ack);  // duplicate
  EXPECT_EQ(sender.cwnd(), cwnd_after_first);
  EXPECT_EQ(sender.bytes_acked(), 1000);
}

TEST(Subflow, RtoBackoffNeverExceedsMaxRto) {
  EventLoop loop;
  SubflowConfig cfg;
  cfg.max_rto = seconds(2.0);
  SubflowSender sender(loop, cfg, [](Packet) {}, [] {});
  sender.send_data(0, 1000, wire_virtual(1000));
  // No acks ever arrive: the RTO fires repeatedly with exponential backoff.
  // The cap must hold at every timeout, not just asymptotically.
  loop.run_until(TimePoint(seconds(60.0)));
  EXPECT_GE(sender.consecutive_timeouts(), 6);
  EXPECT_LE(sender.rto(), cfg.max_rto);
  // With a 2 s cap, 60 s of silence yields at least ~25 firings; an uncapped
  // doubling series would manage only ~7.
  EXPECT_GE(sender.timeouts(), 20u);
}

}  // namespace
}  // namespace mpdash
