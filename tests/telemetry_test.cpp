#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "telemetry/metrics.h"
#include "telemetry/prometheus.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_sink.h"

namespace mpdash {
namespace {

// --- metrics ----------------------------------------------------------

TEST(Metrics, CounterIsMonotonic) {
  MetricsRegistry reg;
  Counter c = reg.counter("a.total");
  c.increment();
  c.add(2.5);
  c.add(-10.0);  // negative deltas are invalid and ignored
  c.add(0.0);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("a.level");
  g.set(7.0);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("rtt", {10.0, 50.0, 100.0});
  h.record(5.0);    // <= 10
  h.record(10.0);   // <= 10 (bounds are inclusive upper edges)
  h.record(60.0);   // <= 100
  h.record(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 575.0);
  EXPECT_DOUBLE_EQ(h.mean(), 143.75);

  const MetricsSnapshot snap = reg.snapshot(kTimeZero);
  ASSERT_EQ(snap.values.size(), 1u);
  const MetricValue& v = snap.values.front();
  ASSERT_EQ(v.bucket_counts.size(), 4u);
  EXPECT_EQ(v.bucket_counts[0], 2u);  // 5, 10
  EXPECT_EQ(v.bucket_counts[1], 0u);
  EXPECT_EQ(v.bucket_counts[2], 1u);  // 60
  EXPECT_EQ(v.bucket_counts[3], 1u);  // 500 (overflow)
  EXPECT_DOUBLE_EQ(v.min, 5.0);
  EXPECT_DOUBLE_EQ(v.max, 500.0);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry reg;
  Counter a = reg.counter("x");
  Counter b = reg.counter("x");
  a.increment();
  b.increment();
  EXPECT_DOUBLE_EQ(a.value(), 2.0);  // same slot
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(Metrics, DetachedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.increment();
  g.set(3.0);
  h.record(1.0);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, SnapshotIsNameSortedAndTimelineExportsCsv) {
  MetricsRegistry reg;
  reg.gauge("b.level").set(2.0);
  reg.counter("a.total").add(5.0);
  MetricsTimeline timeline;
  timeline.record(reg.snapshot(TimePoint(seconds(1.0))));
  reg.counter("a.total").add(1.0);
  timeline.record(reg.snapshot(TimePoint(seconds(2.0))));

  const MetricsSnapshot& first = timeline.snapshots().front();
  ASSERT_EQ(first.values.size(), 2u);
  EXPECT_EQ(first.values[0].name, "a.total");
  EXPECT_EQ(first.values[1].name, "b.level");

  const std::string csv = timeline.to_csv();
  EXPECT_NE(csv.find("time_s,metric,value"), std::string::npos);
  EXPECT_NE(csv.find("1,a.total,5"), std::string::npos);
  EXPECT_NE(csv.find("2,a.total,6"), std::string::npos);
  EXPECT_NE(csv.find("b.level,2"), std::string::npos);
}

TEST(Metrics, TimelineFlattensHistograms) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("rtt_ms", {10.0, 100.0});
  h.record(3.0);
  h.record(42.0);
  MetricsTimeline timeline;
  timeline.record(reg.snapshot(TimePoint(seconds(1.0))));
  const std::string csv = timeline.to_csv();
  EXPECT_NE(csv.find("rtt_ms.count,2"), std::string::npos);
  EXPECT_NE(csv.find("rtt_ms.le_10,1"), std::string::npos);
  EXPECT_NE(csv.find("rtt_ms.le_100,2"), std::string::npos);  // cumulative
  EXPECT_NE(csv.find("rtt_ms.le_inf,2"), std::string::npos);
}

// --- trace sinks ------------------------------------------------------

TraceRecord player_record(double t, int chunk) {
  TraceRecord r;
  r.at = TimePoint(seconds(t));
  r.type = TraceType::kPlayer;
  r.label = "chunk_complete";
  r.chunk = chunk;
  return r;
}

TEST(TraceSink, RingBufferKeepsNewestOnWraparound) {
  RingBufferSink ring(4);
  for (int i = 0; i < 10; ++i) ring.on_record(player_record(i, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_seen(), 10u);
  EXPECT_EQ(ring.overwritten(), 6u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(snap[static_cast<std::size_t>(i)].chunk, 6 + i);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceSink, RingBufferBelowCapacityReturnsAll) {
  RingBufferSink ring(8);
  for (int i = 0; i < 3; ++i) ring.on_record(player_record(i, i));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().chunk, 0);
  EXPECT_EQ(snap.back().chunk, 2);
  EXPECT_EQ(ring.overwritten(), 0u);
}

TEST(TraceSink, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("nul\x01") ), "nul\\u0001");
}

TEST(TraceSink, RecordToJsonCarriesTypedFields) {
  TraceRecord r;
  r.at = TimePoint(seconds(1.5));
  r.type = TraceType::kSchedDecision;
  r.label = "enable";
  r.path_id = 1;
  r.enabled = true;
  r.budget_s = 2.5;
  r.deliverable_bytes = 1000.0;
  r.remaining_bytes = 4000.0;
  const std::string json = trace_record_to_json(r);
  EXPECT_NE(json.find("\"type\":\"sched_decision\""), std::string::npos);
  EXPECT_NE(json.find("\"decision\":\"enable\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"budget_s\":2.5"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceSink, JsonlSinkWritesOneLinePerRecord) {
  // Absolute temp path: cases run concurrently under `ctest -j` from a
  // shared working directory, so cwd-relative output files are unsafe.
  const std::string path =
      ::testing::TempDir() + "mpdash_telemetry_test_out.jsonl";
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.on_record(player_record(1.0, 0));
    sink.on_record(player_record(2.0, 1));
    EXPECT_EQ(sink.records_written(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(8192, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 2);
  EXPECT_NE(contents.find("\"type\":\"player\""), std::string::npos);
}

TEST(Telemetry, EmitFansOutAndSinkListDedupes) {
  Telemetry telemetry;
  TraceCollector a, b;
  telemetry.add_sink(&a);
  telemetry.add_sink(&a);  // duplicate registration is a no-op
  telemetry.add_sink(&b);
  EXPECT_TRUE(telemetry.tracing());
  telemetry.emit(player_record(1.0, 0));
  EXPECT_EQ(a.records().size(), 1u);
  EXPECT_EQ(b.records().size(), 1u);
  telemetry.remove_sink(&a);
  telemetry.emit(player_record(2.0, 1));
  EXPECT_EQ(a.records().size(), 1u);
  EXPECT_EQ(b.records().size(), 2u);
  telemetry.remove_sink(&b);
  EXPECT_FALSE(telemetry.tracing());
}

// --- determinism ------------------------------------------------------

Video determinism_video() {
  return Video("Det", seconds(4.0), 6,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41)},
               0.12, 11);
}

struct RunOutcome {
  SessionResult res;
  std::size_t executed = 0;
};

RunOutcome run_once(Telemetry* telemetry) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(3.0)));
  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  SessionEnv env;
  env.telemetry = telemetry;
  RunOutcome out;
  out.res = run_streaming_session(scenario, determinism_video(), cfg, env);
  out.executed = scenario.loop().executed_events();
  if (telemetry) scenario.set_telemetry(nullptr);
  return out;
}

TEST(Telemetry, AttachedSinksLeaveRunsBitwiseIdentical) {
  const RunOutcome bare = run_once(nullptr);

  Telemetry telemetry;
  RingBufferSink ring(1 << 14);
  TraceCollector collector;
  telemetry.add_sink(&ring);
  telemetry.add_sink(&collector);
  const RunOutcome traced = run_once(&telemetry);

  ASSERT_TRUE(bare.res.completed);
  ASSERT_TRUE(traced.res.completed);
  // Passive observation: every QoE output and the event schedule itself
  // must be bitwise identical with and without telemetry attached.
  EXPECT_EQ(bare.executed, traced.executed);
  EXPECT_EQ(bare.res.session_s, traced.res.session_s);
  EXPECT_EQ(bare.res.chunks, traced.res.chunks);
  EXPECT_EQ(bare.res.stalls, traced.res.stalls);
  EXPECT_EQ(bare.res.switches, traced.res.switches);
  EXPECT_EQ(bare.res.avg_bitrate_mbps, traced.res.avg_bitrate_mbps);
  EXPECT_EQ(bare.res.wifi_bytes, traced.res.wifi_bytes);
  EXPECT_EQ(bare.res.cell_bytes, traced.res.cell_bytes);
  EXPECT_EQ(bare.res.deadline_misses, traced.res.deadline_misses);

  // ...and the trace actually observed the session.
  EXPECT_GT(collector.records().size(), 0u);
  bool saw_subflow = false, saw_player = false, saw_sched = false;
  for (const auto& r : collector.records()) {
    saw_subflow |= r.type == TraceType::kSubflowUpdate;
    saw_player |= r.type == TraceType::kPlayer;
    saw_sched |= r.type == TraceType::kSchedDecision;
  }
  EXPECT_TRUE(saw_subflow);
  EXPECT_TRUE(saw_player);
  EXPECT_TRUE(saw_sched);
}

TEST(Telemetry, SessionMetricsTimelineSamplesBufferAndCwnd) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(3.0)));
  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  MetricsTimeline timeline;
  SessionEnv env;
  env.metrics = &timeline;
  const SessionResult res =
      run_streaming_session(scenario, determinism_video(), cfg, env);
  ASSERT_TRUE(res.completed);
  ASSERT_FALSE(timeline.empty());
  const std::string csv = timeline.to_csv();
  EXPECT_NE(csv.find("player.buffer_s"), std::string::npos);
  EXPECT_NE(csv.find("mptcp.subflow.0.cwnd"), std::string::npos);
  EXPECT_NE(csv.find("link.wifi.down.delivered_bytes"), std::string::npos);
}

// --- Prometheus exposition ---------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("player.buffer_s"), "player_buffer_s");
  EXPECT_EQ(prometheus_name("mptcp.subflow.1.cwnd"), "mptcp_subflow_1_cwnd");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prometheus_escape_label("two\nlines"), "two\\nlines");
}

TEST(Prometheus, ExpositionFormatConformance) {
  MetricsRegistry reg;
  reg.counter("player.chunks").add(12);
  reg.gauge("player.buffer_s").set(4.5);
  Histogram h = reg.histogram("http.fetch_s", {0.5, 1.0, 2.0});
  h.record(0.3);   // bucket le=0.5
  h.record(0.75);  // bucket le=1.0
  h.record(0.9);   // bucket le=1.0
  h.record(5.0);   // overflow → only +Inf

  const std::string text =
      to_prometheus(reg.snapshot(TimePoint(seconds(10.0))));

  // Every family gets HELP and TYPE lines with the sanitized name.
  EXPECT_NE(text.find("# HELP player_chunks Simulation metric player.chunks"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE player_chunks counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE player_buffer_s gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE http_fetch_s histogram"), std::string::npos);

  // Scalar samples.
  EXPECT_NE(text.find("player_chunks 12\n"), std::string::npos);
  EXPECT_NE(text.find("player_buffer_s 4.5\n"), std::string::npos);

  // Histogram buckets are cumulative with inclusive upper bounds, end in
  // +Inf, and agree with _count.
  EXPECT_NE(text.find("http_fetch_s_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("http_fetch_s_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("http_fetch_s_bucket{le=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("http_fetch_s_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("http_fetch_s_sum 6.95\n"), std::string::npos);
  EXPECT_NE(text.find("http_fetch_s_count 4\n"), std::string::npos);

  // Every non-comment line is `name[{labels}] value`.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.substr(0, space).find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:{}=\".+"),
              std::string::npos)
        << line;
  }
}

TEST(Prometheus, LabelsAttachToEverySampleEscaped) {
  MetricsRegistry reg;
  reg.counter("player.chunks").add(3);
  Histogram h = reg.histogram("http.fetch_s", {1.0});
  h.record(0.5);

  PrometheusOptions opts;
  opts.labels = {{"run", "chaos/3"}, {"note", "say \"hi\"\nbye"}};
  const std::string text = to_prometheus(reg.snapshot(kTimeZero), opts);

  EXPECT_NE(text.find("player_chunks{run=\"chaos/3\","
                      "note=\"say \\\"hi\\\"\\nbye\"} 3\n"),
            std::string::npos)
      << text;
  // Histograms merge caller labels with the le pair.
  EXPECT_NE(text.find("http_fetch_s_bucket{run=\"chaos/3\","
                      "note=\"say \\\"hi\\\"\\nbye\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("http_fetch_s_count{run=\"chaos/3\""),
            std::string::npos);
}

TEST(Prometheus, TimestampsUseSimulatedMilliseconds) {
  MetricsRegistry reg;
  reg.gauge("player.buffer_s").set(2.0);
  PrometheusOptions opts;
  opts.timestamps = true;
  const std::string text =
      to_prometheus(reg.snapshot(TimePoint(seconds(12.5))), opts);
  EXPECT_NE(text.find("player_buffer_s 2 12500\n"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace mpdash
