// JSONL trace round-trip: every field trace_record_to_json emits must
// parse back to an identical TraceRecord (src/analysis/trace_load is the
// inverse of the writer), both for hand-built records of every type and
// for a full streaming-session trace written through JsonlSink. Also
// pins the span-propagation contract (every record between a chunk's
// kSpanStart and kSpanEnd carries its id) and that attaching the
// metrics snapshotter does not perturb the trace.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/spans.h"
#include "analysis/trace_load.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "telemetry/telemetry.h"

namespace mpdash {
namespace {

TraceRecord roundtrip(const TraceRecord& in) {
  const std::string json = trace_record_to_json(in);
  TraceRecord out;
  std::string err;
  EXPECT_TRUE(trace_record_from_json(json, &out, &err)) << json << ": " << err;
  return out;
}

void expect_label_eq(const char* a, const char* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a) {
    EXPECT_STREQ(a, b);
  }
}

// Fields common to every record type.
void expect_head_eq(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.at, b.at);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.path_id, b.path_id);
}

TEST(TraceRoundTrip, PacketFieldsSurvive) {
  TraceRecord r;
  r.at = TimePoint(nanoseconds(1234567891));  // 1.234567891 s, all digits
  r.type = TraceType::kPacketDeliver;
  r.span = 7;
  r.path_id = 1;
  r.link_id = 2;
  r.kind = PacketKind::kData;
  r.wire_size = 1500;
  r.payload_len = 1400;
  r.data_seq = 123456789012345ull;
  r.retransmit = true;
  const TraceRecord p = roundtrip(r);
  expect_head_eq(r, p);
  EXPECT_EQ(p.link_id, 2);
  EXPECT_EQ(p.kind, PacketKind::kData);
  EXPECT_EQ(p.wire_size, 1500u);
  EXPECT_EQ(p.payload_len, 1400u);
  EXPECT_EQ(p.data_seq, 123456789012345ull);
  EXPECT_TRUE(p.retransmit);
  EXPECT_TRUE(p.segments.empty());  // payload never serializes, by design
}

TEST(TraceRoundTrip, AckPacketOmitsPayloadFields) {
  TraceRecord r;
  r.at = TimePoint(seconds(2.5));
  r.type = TraceType::kPacketSend;
  r.path_id = 0;
  r.link_id = 1;  // uplink
  r.kind = PacketKind::kAck;
  r.wire_size = 52;
  const TraceRecord p = roundtrip(r);
  expect_head_eq(r, p);
  EXPECT_EQ(p.kind, PacketKind::kAck);
  EXPECT_EQ(p.wire_size, 52u);
  EXPECT_EQ(p.payload_len, 0u);
  EXPECT_FALSE(p.retransmit);
}

TEST(TraceRoundTrip, SubflowUpdateDoublesAreExact) {
  TraceRecord r;
  r.type = TraceType::kSubflowUpdate;
  r.at = TimePoint(nanoseconds(999999999));
  r.path_id = 1;
  // Values with no short decimal representation: shortest-round-trip
  // formatting (std::to_chars) must still restore them bit-for-bit.
  r.cwnd = 14480.000000000002;
  r.ssthresh = 1.0 / 3.0;
  r.srtt_ms = 62.300000000000004;
  const TraceRecord p = roundtrip(r);
  expect_head_eq(r, p);
  EXPECT_EQ(p.cwnd, r.cwnd);
  EXPECT_EQ(p.ssthresh, r.ssthresh);
  EXPECT_EQ(p.srtt_ms, r.srtt_ms);
}

TEST(TraceRoundTrip, SchedDecisionInputsSurvive) {
  for (const char* decision :
       {"begin", "enable", "disable", "complete", "miss", "end"}) {
    TraceRecord r;
    r.type = TraceType::kSchedDecision;
    r.at = TimePoint(seconds(3.125));
    r.span = 42;
    r.path_id = 1;
    r.label = decision;
    r.enabled = std::strcmp(decision, "enable") == 0;
    r.budget_s = 1.2999999999999998;
    r.deliverable_bytes = 350000.5;
    r.remaining_bytes = 1048576.0;
    const TraceRecord p = roundtrip(r);
    expect_head_eq(r, p);
    expect_label_eq(p.label, decision);
    EXPECT_EQ(p.enabled, r.enabled);
    EXPECT_EQ(p.budget_s, r.budget_s);
    EXPECT_EQ(p.deliverable_bytes, r.deliverable_bytes);
    EXPECT_EQ(p.remaining_bytes, r.remaining_bytes);
  }
}

TEST(TraceRoundTrip, PathMaskSurvives) {
  TraceRecord r;
  r.type = TraceType::kPathMask;
  r.at = TimePoint(seconds(1.0));
  r.mask = 0b101u;
  const TraceRecord p = roundtrip(r);
  expect_head_eq(r, p);
  EXPECT_EQ(p.mask, 0b101u);
}

TEST(TraceRoundTrip, PlayerEventSurvives) {
  TraceRecord r;
  r.type = TraceType::kPlayer;
  r.at = TimePoint(seconds(12.75));
  r.span = 9;
  r.label = "chunk_request";
  r.level = 3;
  r.chunk = 17;
  r.bytes = 280652;
  r.value = 8.6999999999999993;
  const TraceRecord p = roundtrip(r);
  expect_head_eq(r, p);
  expect_label_eq(p.label, "chunk_request");
  EXPECT_EQ(p.level, 3);
  EXPECT_EQ(p.chunk, 17);
  EXPECT_EQ(p.bytes, 280652u);
  EXPECT_EQ(p.value, r.value);
}

TEST(TraceRoundTrip, FaultPhaseLabelsSurvive) {
  for (const char* kind : {"blackout", "flap", "loss_burst", "rtt_spike",
                           "rate_collapse", "server_stall", "server_reset"}) {
    for (const bool start : {true, false}) {
      TraceRecord r;
      r.type = TraceType::kFault;
      r.at = TimePoint(seconds(30.0));
      r.path_id = std::strncmp(kind, "server", 6) == 0 ? -1 : 1;
      r.label = kind;
      r.enabled = start;  // serialized as phase:"start"/"end"
      r.value = 2.5;
      const TraceRecord p = roundtrip(r);
      expect_head_eq(r, p);
      expect_label_eq(p.label, kind);
      EXPECT_EQ(p.enabled, start) << kind;
      EXPECT_EQ(p.value, 2.5);
    }
  }
}

TEST(TraceRoundTrip, HttpEventSurvives) {
  for (const char* event :
       {"request", "timeout", "retry", "response", "giveup"}) {
    TraceRecord r;
    r.type = TraceType::kHttp;
    r.at = TimePoint(seconds(4.5));
    r.span = 3;
    r.label = event;
    r.level = 2;  // attempt number
    r.value = 1.5;
    const TraceRecord p = roundtrip(r);
    expect_head_eq(r, p);
    expect_label_eq(p.label, event);
    EXPECT_EQ(p.level, 2);
    EXPECT_EQ(p.value, 1.5);
  }
}

TEST(TraceRoundTrip, SpanStartAndEndSurvive) {
  TraceRecord s;
  s.type = TraceType::kSpanStart;
  s.at = TimePoint(seconds(8.0));
  s.span = 5;
  s.label = "chunk";
  s.level = 2;
  s.chunk = 6;
  s.bytes = 512000;
  s.value = 6.4;  // deadline_s
  const TraceRecord ps = roundtrip(s);
  expect_head_eq(s, ps);
  expect_label_eq(ps.label, "chunk");
  EXPECT_EQ(ps.level, 2);
  EXPECT_EQ(ps.chunk, 6);
  EXPECT_EQ(ps.bytes, 512000u);
  EXPECT_EQ(ps.value, 6.4);

  TraceRecord e;
  e.type = TraceType::kSpanEnd;
  e.at = TimePoint(seconds(9.5));
  e.span = 5;
  e.label = "delivered";
  e.level = 2;
  e.chunk = 6;
  e.bytes = 512000;
  e.value = 1.5;  // elapsed_s
  const TraceRecord pe = roundtrip(e);
  expect_head_eq(e, pe);
  expect_label_eq(pe.label, "delivered");
  EXPECT_EQ(pe.value, 1.5);

  // A failed manifest span omits level/chunk/bytes entirely.
  TraceRecord m;
  m.type = TraceType::kSpanEnd;
  m.at = TimePoint(seconds(1.0));
  m.span = 1;
  m.label = "failed";
  m.value = 1.0;
  const TraceRecord pm = roundtrip(m);
  expect_label_eq(pm.label, "failed");
  EXPECT_EQ(pm.level, -1);
  EXPECT_EQ(pm.chunk, -1);
  EXPECT_EQ(pm.bytes, 0u);
}

TEST(TraceRoundTrip, NestedAndOverlappingSpansSurvive) {
  // A pipelined trace interleaves span lifecycles: 2 opens inside 1, 3
  // opens inside both, 2 closes before 1 (overlap, not strict nesting).
  // The writer/loader pair must preserve the interleaving exactly, and
  // the span model built from the loaded records must see the overlap.
  auto span_rec = [](double at_s, TraceType type, SpanId span, int chunk,
                     const char* label) {
    TraceRecord r;
    r.at = TimePoint(seconds(at_s));
    r.type = type;
    r.span = span;
    r.chunk = chunk;
    r.level = 1;
    r.bytes = 1000 * span;
    r.label = label;
    r.value = type == TraceType::kSpanStart ? 4.0 : 1.0;
    return r;
  };
  const std::vector<TraceRecord> live = {
      span_rec(1.0, TraceType::kSpanStart, 1, 0, "chunk"),
      span_rec(1.5, TraceType::kSpanStart, 2, 1, "chunk"),
      span_rec(2.0, TraceType::kSpanStart, 3, 2, "chunk"),
      span_rec(2.5, TraceType::kSpanEnd, 2, 1, "delivered"),
      span_rec(3.0, TraceType::kSpanEnd, 1, 0, "delivered"),
      span_rec(3.5, TraceType::kSpanEnd, 3, 2, "abandoned"),
  };

  const std::string path =
      ::testing::TempDir() + "mpdash_overlap_roundtrip.jsonl";
  {
    JsonlSink sink(path);
    for (const TraceRecord& r : live) sink.on_record(r);
  }
  std::vector<TraceRecord> loaded;
  std::string err;
  ASSERT_TRUE(load_trace_jsonl(path, &loaded, &err)) << err;
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    expect_head_eq(live[i], loaded[i]);
    expect_label_eq(live[i].label, loaded[i].label);
    EXPECT_EQ(loaded[i].chunk, live[i].chunk) << "record " << i;
    EXPECT_EQ(loaded[i].bytes, live[i].bytes) << "record " << i;
    EXPECT_EQ(loaded[i].value, live[i].value) << "record " << i;
  }

  const SpanModel model = build_span_model(loaded);
  ASSERT_EQ(model.spans.size(), 3u);
  for (const ChunkTimeline& t : model.spans) {
    ASSERT_TRUE(t.closed());
    EXPECT_EQ(t.max_concurrent_spans, 3);  // all three open in [2.0, 2.5)
  }
  EXPECT_STREQ(model.spans[0].status, "delivered");
  EXPECT_STREQ(model.spans[1].status, "delivered");
  EXPECT_STREQ(model.spans[2].status, "abandoned");
  // Close order (2, 1, 3) differs from open order (1, 2, 3): the model
  // must keep per-span windows, not assume LIFO/FIFO nesting.
  EXPECT_EQ(to_seconds(model.spans[0].end), 3.0);
  EXPECT_EQ(to_seconds(model.spans[1].end), 2.5);
  EXPECT_EQ(to_seconds(model.spans[2].end), 3.5);
}

TEST(TraceRoundTrip, LoaderRejectsGarbage) {
  TraceRecord out;
  std::string err;
  EXPECT_FALSE(trace_record_from_json("not json", &out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(trace_record_from_json("{\"t\":1.0}", &out, &err));
  EXPECT_FALSE(
      trace_record_from_json("{\"t\":1.0,\"type\":\"martian\"}", &out, &err));
}

TEST(TraceRoundTrip, KnownLabelsInternToStaticStorage) {
  // The same label string always maps to the same pointer, so loaded
  // records can be compared by pointer just like live ones.
  EXPECT_EQ(intern_trace_label("chunk_request"),
            intern_trace_label("chunk_request"));
  EXPECT_EQ(intern_trace_label("blackout"), intern_trace_label("blackout"));
  EXPECT_EQ(intern_trace_label("novel_label_xyz"),
            intern_trace_label("novel_label_xyz"));
}

// --- trace-type filtering ----------------------------------------------

TEST(TraceTypeFilter, ParseAcceptsNamesAndRejectsUnknown) {
  std::uint32_t mask = 0;
  ASSERT_TRUE(parse_trace_types("player,sched_decision", &mask));
  EXPECT_EQ(mask, (1u << static_cast<unsigned>(TraceType::kPlayer)) |
                      (1u << static_cast<unsigned>(TraceType::kSchedDecision)));
  ASSERT_TRUE(parse_trace_types(" fault , span_start,span_end ", &mask));
  EXPECT_EQ(mask, (1u << static_cast<unsigned>(TraceType::kFault)) |
                      (1u << static_cast<unsigned>(TraceType::kSpanStart)) |
                      (1u << static_cast<unsigned>(TraceType::kSpanEnd)));
  const std::uint32_t before = mask;
  EXPECT_FALSE(parse_trace_types("player,bogus", &mask));
  EXPECT_EQ(mask, before);  // untouched on failure
}

TEST(TraceTypeFilter, SinkForwardsOnlyMaskedTypes) {
  TraceCollector inner;
  std::uint32_t mask = 0;
  ASSERT_TRUE(parse_trace_types("player", &mask));
  TypeFilterSink filter(&inner, mask);
  TraceRecord player;
  player.type = TraceType::kPlayer;
  TraceRecord packet;
  packet.type = TraceType::kPacketDeliver;
  filter.on_record(player);
  filter.on_record(packet);
  filter.on_record(player);
  ASSERT_EQ(inner.records().size(), 2u);
  EXPECT_EQ(inner.records()[0].type, TraceType::kPlayer);
  EXPECT_EQ(inner.records()[1].type, TraceType::kPlayer);
}

// --- full-session round-trip and span propagation -----------------------

class SessionTrace : public ::testing::Test {
 protected:
  // Short MP-DASH session over ample constant links: every chunk
  // delivers, the scheduler engages, spans never overlap.
  SessionResult run(Telemetry& telemetry, MetricsTimeline* metrics) {
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(6.0), DataRate::mbps(4.0));
    net.seed = 21;
    Scenario scenario(net);
    SessionConfig cfg;
    cfg.scheme = Scheme::kMpDashDuration;
    SessionEnv env;
    env.telemetry = &telemetry;
    env.metrics = metrics;
    // 12 chunks (24 s): long enough for the buffer to clear omega so the
    // deadline scheduler engages at least once mid-session.
    const Video video("clip", seconds(2.0), 12,
                      {DataRate::mbps(0.6), DataRate::mbps(1.2)}, 0.1, 11);
    return run_streaming_session(scenario, video, cfg, env);
  }

  std::string write_and_read(const std::vector<TraceRecord>& records,
                             std::vector<TraceRecord>* loaded) {
    const std::string path =
        ::testing::TempDir() + "mpdash_roundtrip_test.jsonl";
    {
      JsonlSink sink(path);
      for (const TraceRecord& r : records) sink.on_record(r);
    }
    std::string err;
    EXPECT_TRUE(load_trace_jsonl(path, loaded, &err)) << err;
    std::remove(path.c_str());
    return path;
  }
};

TEST_F(SessionTrace, JsonlRoundTripsFieldForField) {
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);
  const SessionResult res = run(telemetry, nullptr);
  ASSERT_TRUE(res.completed);
  const std::vector<TraceRecord>& live = collector.records();
  ASSERT_FALSE(live.empty());

  std::vector<TraceRecord> loaded;
  write_and_read(live, &loaded);
  ASSERT_EQ(loaded.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const TraceRecord& a = live[i];
    const TraceRecord& b = loaded[i];
    ASSERT_EQ(a.type, b.type) << "record " << i;
    EXPECT_EQ(a.at, b.at) << "record " << i;
    EXPECT_EQ(a.span, b.span) << "record " << i;
    EXPECT_EQ(a.path_id, b.path_id) << "record " << i;
    expect_label_eq(a.label, b.label);
    if (a.is_packet()) {
      EXPECT_EQ(a.link_id, b.link_id);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.wire_size, b.wire_size);
      EXPECT_EQ(a.payload_len, b.payload_len);
      EXPECT_EQ(a.retransmit, b.retransmit);
    }
    if (a.type == TraceType::kSchedDecision) {
      EXPECT_EQ(a.enabled, b.enabled);
      EXPECT_EQ(a.budget_s, b.budget_s);
      EXPECT_EQ(a.deliverable_bytes, b.deliverable_bytes);
      EXPECT_EQ(a.remaining_bytes, b.remaining_bytes);
    }
  }
}

TEST_F(SessionTrace, EveryChunkGetsOneSpanAndRecordsCarryIt) {
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);
  const SessionResult res = run(telemetry, nullptr);
  ASSERT_TRUE(res.completed);

  const SpanModel model = build_span_model(collector.records());
  // One manifest span + one span per chunk.
  ASSERT_EQ(model.spans.size(), 13u);
  EXPECT_STREQ(model.spans.front().name, "manifest");
  int engaged = 0;
  for (std::size_t i = 1; i < model.spans.size(); ++i) {
    const ChunkTimeline& t = model.spans[i];
    EXPECT_STREQ(t.name, "chunk");
    EXPECT_EQ(t.chunk, static_cast<int>(i - 1));
    EXPECT_GT(t.span, model.spans[i - 1].span);  // allocation order
    ASSERT_TRUE(t.closed());
    EXPECT_STREQ(t.status, "delivered");
    EXPECT_GT(t.delivered_bytes, 0u);
    EXPECT_TRUE(t.have_bytes);  // downlink payload attributed to it
    EXPECT_FALSE(t.missed());
    if (t.sched_engaged) ++engaged;
  }
  // Algorithm 1 engages once the buffer clears omega; the span model must
  // agree with the session's own engagement count.
  EXPECT_GT(res.chunks_engaged, 0);
  EXPECT_EQ(engaged, res.chunks_engaged);

  // Span-carrying coverage: every player, sched, and HTTP record emitted
  // while a chunk was in flight carries a nonzero span.
  for (const TraceRecord& r : collector.records()) {
    if (r.type == TraceType::kSchedDecision || r.type == TraceType::kHttp) {
      EXPECT_NE(r.span, 0u) << to_string(r.type) << " at "
                            << to_seconds(r.at);
    }
  }
}

TEST_F(SessionTrace, SnapshotterDoesNotPerturbTheTrace) {
  // Identical sessions with and without the metrics snapshotter must
  // produce byte-identical JSONL traces: sampling only reads the
  // registry, never feeds back into sim state.
  auto trace_json = [this](bool with_series) {
    Telemetry telemetry;
    TraceCollector collector;
    telemetry.add_sink(&collector);
    MetricsTimeline timeline;
    run(telemetry, with_series ? &timeline : nullptr);
    if (with_series) {
      EXPECT_FALSE(timeline.empty());
    }
    std::string out;
    for (const TraceRecord& r : collector.records()) {
      out += trace_record_to_json(r);
      out += '\n';
    }
    return out;
  };
  const std::string bare = trace_json(false);
  const std::string series = trace_json(true);
  EXPECT_EQ(bare, series);
}

TEST_F(SessionTrace, TimelineCsvIsDeterministic) {
  auto series_csv = [this] {
    Telemetry telemetry;
    MetricsTimeline timeline;
    run(telemetry, &timeline);
    return timeline.to_csv();
  };
  const std::string a = series_csv();
  const std::string b = series_csv();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mpdash
