#include <gtest/gtest.h>

#include "trace/bandwidth_trace.h"
#include "trace/generators.h"
#include "trace/locations.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace mpdash {
namespace {

BandwidthTrace step_trace() {
  return BandwidthTrace({{kTimeZero, DataRate::mbps(8.0)},
                         {TimePoint(seconds(10.0)), DataRate::mbps(4.0)}});
}

TEST(BandwidthTrace, RateAtSegments) {
  const auto t = step_trace();
  EXPECT_EQ(t.rate_at(kTimeZero).as_mbps(), 8.0);
  EXPECT_EQ(t.rate_at(TimePoint(seconds(9.999))).as_mbps(), 8.0);
  EXPECT_EQ(t.rate_at(TimePoint(seconds(10.0))).as_mbps(), 4.0);
  // Final rate holds forever.
  EXPECT_EQ(t.rate_at(TimePoint(seconds(1000.0))).as_mbps(), 4.0);
}

TEST(BandwidthTrace, EmptyTraceIsZero) {
  BandwidthTrace t;
  EXPECT_TRUE(t.rate_at(kTimeZero).is_zero());
  EXPECT_EQ(t.bytes_between(kTimeZero, TimePoint(seconds(5.0))), 0);
  EXPECT_EQ(t.time_to_deliver(kTimeZero, 100), TimePoint::max());
}

TEST(BandwidthTrace, BytesBetweenCrossesSegments) {
  const auto t = step_trace();
  // 5 s at 8 Mbps = 5 MB; 10 s at 8 + 5 s at 4 = 12.5 MB.
  EXPECT_EQ(t.bytes_between(kTimeZero, TimePoint(seconds(5.0))), 5'000'000);
  EXPECT_EQ(t.bytes_between(kTimeZero, TimePoint(seconds(15.0))), 12'500'000);
  // Degenerate ranges.
  EXPECT_EQ(t.bytes_between(TimePoint(seconds(5.0)), TimePoint(seconds(5.0))),
            0);
}

TEST(BandwidthTrace, TimeToDeliverInverse) {
  const auto t = step_trace();
  // 11 MB: 10 MB in first 10 s, 1 MB at 4 Mbps = 2 s more.
  const TimePoint done = t.time_to_deliver(kTimeZero, 11'000'000);
  EXPECT_NEAR(to_seconds(done), 12.0, 1e-6);
  // From mid-trace.
  const TimePoint done2 =
      t.time_to_deliver(TimePoint(seconds(10.0)), 1'000'000);
  EXPECT_NEAR(to_seconds(done2), 12.0, 1e-6);
  EXPECT_EQ(t.time_to_deliver(kTimeZero, 0), kTimeZero);
}

TEST(BandwidthTrace, LoopWrapsAround) {
  auto t = step_trace();
  t.set_loop(seconds(20.0));
  EXPECT_EQ(t.rate_at(TimePoint(seconds(25.0))).as_mbps(), 8.0);  // 25 % 20 = 5
  EXPECT_EQ(t.rate_at(TimePoint(seconds(35.0))).as_mbps(), 4.0);
  // One full loop delivers 15 MB.
  EXPECT_EQ(t.bytes_between(kTimeZero, TimePoint(seconds(40.0))), 30'000'000);
}

TEST(BandwidthTrace, ScaledMultipliesRates) {
  const auto t = step_trace().scaled(0.5);
  EXPECT_EQ(t.rate_at(kTimeZero).as_mbps(), 4.0);
  EXPECT_EQ(t.rate_at(TimePoint(seconds(10.0))).as_mbps(), 2.0);
}

TEST(BandwidthTrace, RejectsBadPoints) {
  EXPECT_THROW(BandwidthTrace({{TimePoint(seconds(1.0)), DataRate::mbps(1)}}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({{kTimeZero, DataRate::mbps(1)},
                               {kTimeZero, DataRate::mbps(2)}}),
               std::invalid_argument);
}

TEST(BandwidthTrace, MeanRate) {
  EXPECT_NEAR(step_trace().mean_rate(seconds(20.0)).as_mbps(), 6.0, 0.01);
}

// --- generators --------------------------------------------------------

class JitterSigma : public ::testing::TestWithParam<double> {};

TEST_P(JitterSigma, PreservesMeanAndFloor) {
  Rng rng(5);
  JitterParams p;
  p.mean = DataRate::mbps(3.8);
  p.sigma_fraction = GetParam();
  p.horizon = seconds(600.0);
  const auto t = gen_jitter(p, rng);
  EXPECT_NEAR(t.mean_rate(seconds(600.0)).as_mbps(), 3.8, 0.2);
  for (const auto& pt : t.points()) {
    EXPECT_GE(pt.rate.as_mbps(), 0.05 * 3.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, JitterSigma,
                         ::testing::Values(0.1, 0.3, 0.5));

TEST(Generators, FieldTraceStatistics) {
  Rng rng(6);
  FieldParams p;
  p.mean = DataRate::mbps(6.0);
  p.horizon = seconds(600.0);
  const auto t = gen_field(p, rng);
  EXPECT_NEAR(t.mean_rate(seconds(600.0)).as_mbps(), 6.0, 1.5);
  // It actually varies.
  double lo = 1e9, hi = 0;
  for (const auto& pt : t.points()) {
    lo = std::min(lo, pt.rate.as_mbps());
    hi = std::max(hi, pt.rate.as_mbps());
  }
  EXPECT_LT(lo, 4.0);
  EXPECT_GT(hi, 8.0);
}

TEST(Generators, MobilityWalkOscillates) {
  Rng rng(7);
  MobilityParams p;
  p.peak = DataRate::mbps(5.0);
  p.period = seconds(60.0);
  p.horizon = seconds(120.0);
  const auto t = gen_mobility_walk(p, rng);
  // Near the AP at t=0, far at t=30, near again at t=60.
  EXPECT_GT(t.rate_at(TimePoint(seconds(1.0))).as_mbps(), 2.5);
  EXPECT_LT(t.rate_at(TimePoint(seconds(30.0))).as_mbps(), 1.5);
  EXPECT_GT(t.rate_at(TimePoint(seconds(59.0))).as_mbps(), 2.0);
}

TEST(Generators, StepAndRamp) {
  const auto st =
      gen_step(DataRate::mbps(8), DataRate::mbps(2), seconds(5.0),
               seconds(20.0));
  EXPECT_EQ(st.rate_at(TimePoint(seconds(2.0))).as_mbps(), 8.0);
  EXPECT_EQ(st.rate_at(TimePoint(seconds(7.0))).as_mbps(), 2.0);

  const auto ramp =
      gen_ramp(DataRate::mbps(10), DataRate::mbps(0), 10, seconds(10.0));
  EXPECT_EQ(ramp.rate_at(kTimeZero).as_mbps(), 10.0);
  EXPECT_LT(ramp.rate_at(TimePoint(seconds(9.5))).as_mbps(), 1.0);
}

// --- locations ---------------------------------------------------------

TEST(Locations, ThirtyThreeWithPaperScenarioSplit) {
  const auto& locs = field_study_locations();
  ASSERT_EQ(locs.size(), 33u);
  int s1 = 0, s2 = 0, s3 = 0;
  for (const auto& l : locs) {
    switch (l.scenario) {
      case WifiScenario::kNeverSustains: ++s1; break;
      case WifiScenario::kSometimesSustains: ++s2; break;
      case WifiScenario::kAlwaysSustains: ++s3; break;
    }
  }
  // Paper: 64% / 15% / 21% of 33.
  EXPECT_EQ(s1, 21);
  EXPECT_EQ(s2, 5);
  EXPECT_EQ(s3, 7);
}

TEST(Locations, Table5ValuesMatchPaper) {
  const auto t5 = table5_locations();
  ASSERT_EQ(t5.size(), 7u);
  EXPECT_EQ(t5[0].name, "Hotel Hi");
  EXPECT_NEAR(t5[0].wifi_mean.as_mbps(), 2.92, 1e-9);
  EXPECT_NEAR(to_milliseconds(t5[0].wifi_rtt), 14.1, 1e-6);
  EXPECT_EQ(t5.back().name, "Elec. Store");
  EXPECT_NEAR(t5.back().wifi_mean.as_mbps(), 28.4, 1e-9);
  EXPECT_NEAR(t5.back().lte_mean.as_mbps(), 18.5, 1e-9);
}

TEST(Locations, TracesAreDeterministicPerLocation) {
  const auto& loc = field_study_locations().front();
  const auto a = loc.wifi_trace(seconds(60.0));
  const auto b = loc.wifi_trace(seconds(60.0));
  ASSERT_EQ(a.points().size(), b.points().size());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].rate.bps(), b.points()[i].rate.bps());
  }
}

TEST(Locations, Table1ProfilesMatchPaper) {
  const auto& profiles = table1_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "SYNTH sigma=10%");
  EXPECT_EQ(profiles[0].file_size, megabytes(5));
  EXPECT_EQ(profiles[2].name, "FastFood");
  EXPECT_NEAR(profiles[2].wifi_mean.as_mbps(), 5.2, 1e-9);
  EXPECT_EQ(profiles[4].file_size, megabytes(50));
  EXPECT_EQ(profiles[4].deadlines.size(), 4u);
}

// --- trace I/O ---------------------------------------------------------

TEST(TraceIo, CsvRoundTrip) {
  const auto t = step_trace();
  const auto back = trace_from_csv(trace_to_csv(t));
  ASSERT_EQ(back.points().size(), 2u);
  EXPECT_NEAR(back.points()[1].rate.as_mbps(), 4.0, 1e-6);
  EXPECT_NEAR(to_seconds(back.points()[1].start), 10.0, 1e-6);
}

TEST(TraceIo, RejectsMalformed) {
  EXPECT_THROW(trace_from_csv("time_s,rate_mbps\nnot-a-number,1\n"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_csv("0.0\n"), std::invalid_argument);
}

}  // namespace
}  // namespace mpdash
