// Trace-tool analytics: RFC-4180 span CSV round-trips, deterministic
// fault-kind tie-breaking, attribution_counts ordering, the flame-view
// nesting model (HTTP attempts + per-path activity inside chunk spans),
// the campaign roll-up aggregation, and the golden flame snapshot over
// the pipelined scheduler fixture.
//
// Regenerate the flame golden after an intentional rendering change:
//   MPDASH_UPDATE_GOLDEN=1 ./tests/trace_tool_test

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/render.h"
#include "analysis/rollup.h"
#include "analysis/spans.h"
#include "analysis/trace_load.h"
#include "exp/chaos.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "fault/fault.h"
#include "util/csv.h"

namespace mpdash {
namespace {

TraceRecord rec(TraceType type, double at_s, SpanId span = 0) {
  TraceRecord r;
  r.type = type;
  r.at = kTimeZero + seconds(at_s);
  r.span = span;
  return r;
}

TraceRecord span_start(SpanId span, double at_s, const char* name, int chunk,
                       int level, Bytes bytes, double deadline_s) {
  TraceRecord r = rec(TraceType::kSpanStart, at_s, span);
  r.label = name;
  r.chunk = chunk;
  r.level = level;
  r.bytes = bytes;
  r.value = deadline_s;
  return r;
}

TraceRecord span_end(SpanId span, double at_s, const char* status,
                     Bytes bytes) {
  TraceRecord r = rec(TraceType::kSpanEnd, at_s, span);
  r.label = status;
  r.bytes = bytes;
  return r;
}

TraceRecord fault_edge(double at_s, const char* kind, int path, bool begin) {
  TraceRecord r = rec(TraceType::kFault, at_s);
  r.label = kind;
  r.path_id = path;
  r.enabled = begin;
  return r;
}

TraceRecord http(SpanId span, double at_s, const char* label, int attempt,
                 double value = 0.0) {
  TraceRecord r = rec(TraceType::kHttp, at_s, span);
  r.label = label;
  r.level = attempt;
  r.value = value;
  return r;
}

TraceRecord deliver(SpanId span, double at_s, int path, Bytes payload) {
  TraceRecord r = rec(TraceType::kPacketDeliver, at_s, span);
  r.kind = PacketKind::kData;
  r.path_id = path;
  r.link_id = path * 2;  // even = downlink
  r.payload_len = payload;
  return r;
}

// --- satellite: RFC-4180 span CSV ---------------------------------------

TEST(SpanCsv, Rfc4180RoundTripsCraftedSpans) {
  // Span names / statuses with every character class RFC 4180 makes
  // special: commas, double quotes, and an embedded newline.
  const char* name = intern_trace_label("chunk \"a\", pipelined");
  const char* status = intern_trace_label("abandoned,\nmid-flight");
  std::vector<TraceRecord> trace;
  trace.push_back(span_start(1, 0.125, name, 3, 2, 1000, 0.1 + 0.2));
  trace.push_back(span_end(1, 1.0 / 3.0, status, 999));
  trace.push_back(span_start(2, 0.5, "chunk", 4, 1, 2000, 4.0));
  trace.push_back(span_end(2, 0.75, "delivered", 2000));

  SpanModel model = build_span_model(trace);
  attribute_misses(&model);
  const std::string csv = spans_to_csv(model);

  const auto rows = parse_csv(csv);
  ASSERT_EQ(rows.size(), 3u);  // header + two spans
  const auto& header = rows[0];
  const auto& span1 = rows[1];
  ASSERT_EQ(span1.size(), header.size());

  auto col = [&](const char* want) -> std::string {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == want) return span1[i];
    }
    ADD_FAILURE() << "missing column " << want;
    return {};
  };
  // Embedded quotes, commas, and the newline must parse back verbatim.
  EXPECT_EQ(col("name"), name);
  EXPECT_EQ(col("status"), status);
  // Full precision: the parsed text must round-trip to the exact double.
  EXPECT_EQ(std::strtod(col("deadline_s").c_str(), nullptr), 0.1 + 0.2);
  EXPECT_EQ(std::strtod(col("start_s").c_str(), nullptr), 0.125);
  EXPECT_EQ(std::strtod(col("end_s").c_str(), nullptr),
            to_seconds(model.spans[0].end));
  // No raw (unquoted) comma from the crafted name may create extra cells.
  for (const auto& row : rows) EXPECT_EQ(row.size(), header.size());
}

TEST(SpanCsv, ShortestDoubleIsLossless) {
  for (const double v : {0.1, 1.0 / 3.0, 0.1 + 0.2, 123456.789012345,
                         1e-9, 0.0, 2.5}) {
    const std::string s = shortest_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    EXPECT_EQ(s.find(','), std::string::npos);
  }
}

// --- satellite: deterministic fault-kind tie-breaking -------------------

// One missed span [0, 10] with two fault kinds of *exactly* equal union
// overlap. The dominant kind must be the precedence winner no matter
// which order the windows entered the trace.
TEST(TieBreak, EqualSharesResolveByPrecedenceNotInsertionOrder) {
  for (const bool blackout_first : {true, false}) {
    std::vector<TraceRecord> trace;
    trace.push_back(span_start(1, 0.0, "chunk", 0, 1, 1000, 1.0));
    auto add_blackout = [&] {
      trace.push_back(fault_edge(2.0, "blackout", 0, true));
      trace.push_back(fault_edge(4.0, "blackout", 0, false));
    };
    auto add_collapse = [&] {
      trace.push_back(fault_edge(6.0, "rate_collapse", 0, true));
      trace.push_back(fault_edge(8.0, "rate_collapse", 0, false));
    };
    if (blackout_first) {
      add_blackout();
      add_collapse();
    } else {
      add_collapse();
      add_blackout();
    }
    trace.push_back(span_end(1, 10.0, "abandoned", 0));

    SpanModel model = build_span_model(trace);
    attribute_misses(&model);
    ASSERT_EQ(model.spans.size(), 1u);
    const ChunkTimeline& t = model.spans[0];
    ASSERT_EQ(t.fault_overlap_by_kind.size(), 2u);
    // Listed in documented precedence order, not discovery order.
    EXPECT_STREQ(t.fault_overlap_by_kind[0].first, "blackout");
    EXPECT_STREQ(t.fault_overlap_by_kind[1].first, "rate_collapse");
    EXPECT_DOUBLE_EQ(t.fault_overlap_by_kind[0].second, 2.0);
    EXPECT_DOUBLE_EQ(t.fault_overlap_by_kind[1].second, 2.0);
    ASSERT_NE(t.dominant_fault_kind, nullptr);
    EXPECT_STREQ(t.dominant_fault_kind, "blackout")
        << "equal shares must resolve to the higher-precedence kind "
        << (blackout_first ? "(blackout first)" : "(collapse first)");
    EXPECT_EQ(t.cause, MissCause::kFaultBlackout);
  }
}

TEST(TieBreak, LargerShareBeatsPrecedence) {
  std::vector<TraceRecord> trace;
  trace.push_back(span_start(1, 0.0, "chunk", 0, 1, 1000, 1.0));
  trace.push_back(fault_edge(1.0, "blackout", 0, true));
  trace.push_back(fault_edge(2.0, "blackout", 0, false));
  trace.push_back(fault_edge(3.0, "rate_collapse", 0, true));
  trace.push_back(fault_edge(8.0, "rate_collapse", 0, false));
  trace.push_back(span_end(1, 10.0, "abandoned", 0));

  SpanModel model = build_span_model(trace);
  ASSERT_EQ(model.spans.size(), 1u);
  EXPECT_STREQ(model.spans[0].dominant_fault_kind, "rate_collapse");
}

TEST(TieBreak, FaultKindRankFollowsDocumentedOrder) {
  EXPECT_LT(fault_kind_rank("blackout"), fault_kind_rank("flap"));
  EXPECT_LT(fault_kind_rank("flap"), fault_kind_rank("rate_collapse"));
  EXPECT_LT(fault_kind_rank("rate_collapse"), fault_kind_rank("loss_burst"));
  EXPECT_LT(fault_kind_rank("server_stall"), fault_kind_rank("server_reset"));
  // Unknown kinds sort after every known one; null after unknown.
  EXPECT_LT(fault_kind_rank("server_reset"), fault_kind_rank("mystery"));
  EXPECT_LT(fault_kind_rank("mystery"), fault_kind_rank(nullptr));
}

TEST(Attribution, CountsComeBackInPrecedenceOrder) {
  std::vector<TraceRecord> trace;
  trace.push_back(span_start(1, 0.0, "chunk", 0, 1, 1000, 1.0));
  trace.push_back(span_end(1, 5.0, "abandoned", 0));
  SpanModel model = build_span_model(trace);
  attribute_misses(&model);

  const auto counts = attribution_counts(model);
  ASSERT_EQ(counts.size(), std::size(kMissCausePrecedence));
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].first, kMissCausePrecedence[i]);
  }
  // Zero counts are kept so CSV columns stay fixed-width.
  int total = 0;
  for (const auto& [cause, count] : counts) total += count;
  EXPECT_EQ(total, 1);
  EXPECT_EQ(count_for(counts, MissCause::kUnknown), 1);
  EXPECT_EQ(count_for(counts, MissCause::kFaultBlackout), 0);
}

// --- tentpole: flame view ------------------------------------------------

TEST(Flame, NestsAttemptsBackoffAndPathActivity) {
  std::vector<TraceRecord> trace;
  trace.push_back(span_start(1, 0.0, "chunk", 0, 1, 5000, 8.0));
  trace.push_back(http(1, 0.5, "request", 0));
  trace.push_back(http(1, 3.5, "timeout", 0));
  trace.push_back(http(1, 3.5, "retry", 1, /*backoff=*/1.0));
  trace.push_back(http(1, 4.5, "request", 1));
  trace.push_back(deliver(1, 5.0, 0, 1200));
  trace.push_back(deliver(1, 5.02, 0, 1200));  // < merge gap: same interval
  trace.push_back(deliver(1, 6.0, 1, 800));    // costly path pitches in
  trace.push_back(deliver(1, 6.5, 0, 1200));   // > merge gap: new interval
  trace.push_back(http(1, 7.0, "response", 1));
  trace.push_back(span_end(1, 7.0, "delivered", 5000));
  // An overlapping pipelined span, open over the same window.
  trace.push_back(span_start(2, 5.5, "chunk", 1, 1, 4000, 8.0));
  trace.push_back(http(2, 5.5, "request", 0));
  trace.push_back(span_end(2, 9.0, "delivered", 4000));

  SpanModel model = build_span_model(trace);
  attribute_misses(&model);
  const FlameModel flame = build_flame_model(trace, model);

  ASSERT_EQ(flame.details.size(), 2u);
  const SpanDetail* d = flame.find(model, 1);
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->attempts.size(), 2u);
  EXPECT_EQ(d->attempts[0].attempt, 0);
  EXPECT_STREQ(d->attempts[0].outcome, "timeout");
  EXPECT_DOUBLE_EQ(to_seconds(d->attempts[0].end), 3.5);
  EXPECT_EQ(d->attempts[1].attempt, 1);
  EXPECT_STREQ(d->attempts[1].outcome, "response");
  // The backoff gap is the space between attempt 0's close (3.5) and
  // attempt 1's start (4.5).
  EXPECT_DOUBLE_EQ(to_seconds(d->attempts[1].start), 4.5);

  ASSERT_EQ(d->path_activity.size(), 2u);
  const auto& wifi = d->path_activity.at(0);
  ASSERT_EQ(wifi.size(), 2u);  // merged pair + distant third delivery
  EXPECT_DOUBLE_EQ(to_seconds(wifi[0].first), 5.0);
  EXPECT_DOUBLE_EQ(to_seconds(wifi[0].second), 5.02);
  EXPECT_DOUBLE_EQ(to_seconds(wifi[1].first), 6.5);
  ASSERT_EQ(d->path_activity.at(1).size(), 1u);

  // The span with no deliveries has no activity rows; its lone attempt
  // stays open and extends to the span end.
  const SpanDetail* d2 = flame.find(model, 2);
  ASSERT_NE(d2, nullptr);
  EXPECT_TRUE(d2->path_activity.empty());
  ASSERT_EQ(d2->attempts.size(), 1u);
  EXPECT_EQ(d2->attempts[0].outcome, nullptr);
  EXPECT_DOUBLE_EQ(to_seconds(d2->attempts[0].end), 9.0);

  // Rendering: both spans appear, attempts row shows the retry glyphs.
  const std::string text = render_flame(model, flame, 60);
  EXPECT_NE(text.find("span 1 chunk 0"), std::string::npos);
  EXPECT_NE(text.find("span 2 chunk 1"), std::string::npos);
  EXPECT_NE(text.find("http x2"), std::string::npos);
  EXPECT_NE(text.find("path 0"), std::string::npos);
  EXPECT_NE(text.find("path 1"), std::string::npos);
  EXPECT_NE(text.find('~'), std::string::npos);  // backoff gap
  EXPECT_NE(text.find('x'), std::string::npos);  // timeout glyph
  EXPECT_NE(text.find('o'), std::string::npos);  // response glyph
}

// Golden snapshot: the flame view over an in-process pipelined session
// (3-deep prefetch window, one scripted blackout). Generating the trace
// live — instead of loading the committed jsonl fixture — captures
// kSubflowUpdate records too, so the snapshot locks the subflow
// cwnd/RTT rows alongside the span/http/path nesting. The simulation is
// fully deterministic, so the rendering is bitwise stable.
TEST(Flame, GoldenPipelinedSnapshot) {
  ChaosConfig cfg;
  cfg.chunk_count = 8;
  cfg.session.inflight = 3;

  FaultPlan plan;
  FaultEvent blackout;
  blackout.kind = FaultKind::kBlackout;
  blackout.at = kTimeZero + seconds(6.0);
  blackout.duration = seconds(4.0);
  blackout.path_id = 1;
  plan.events.push_back(blackout);

  Telemetry telemetry;
  TraceCollector capture;
  TypeFilterSink filter(&capture, flame_trace_mask());
  telemetry.add_sink(&filter);

  Scenario scenario(chaos_scenario_config(7));
  SessionConfig scfg = chaos_session_config(cfg, 7);
  SessionEnv env;
  env.telemetry = &telemetry;
  env.faults = &plan;
  run_streaming_session(scenario, chaos_video(cfg), scfg, env);
  telemetry.remove_sink(&filter);
  const std::vector<TraceRecord>& trace = capture.records();

  SpanModel model = build_span_model(trace);
  attribute_misses(&model);
  const FlameModel flame = build_flame_model(trace, model);
  const std::string got = render_flame(model, flame, 72);
  ASSERT_FALSE(got.empty());
  // The satellite this snapshot locks: a subflow congestion row under
  // each path's transmit-activity row.
  EXPECT_NE(got.find("  sf 0"), std::string::npos);
  EXPECT_NE(got.find("cwnd "), std::string::npos);

  const std::string golden =
      std::string(MPDASH_TEST_DATA_DIR) + "/pipelined_flame.txt";
  if (std::getenv("MPDASH_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(golden.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << golden;
    std::fwrite(got.data(), 1, got.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "fixture updated: " << golden
                 << " — review and commit the diff";
  }
  bool ok = false;
  const std::string want = read_file(golden, ok);
  ASSERT_TRUE(ok) << "missing fixture " << golden
                  << "; run with MPDASH_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(got, want)
      << "flame rendering diverged from the committed snapshot. If the "
      << "change is intentional, regenerate with MPDASH_UPDATE_GOLDEN=1 "
      << "and commit the new fixture.";
}

// --- tentpole: campaign roll-up -----------------------------------------

TEST(Rollup, SourceKeyPrefersNumericSeedSuffix) {
  EXPECT_EQ(rollup_source_key("chaos_artifacts/chaos.jsonl.17"), "17");
  EXPECT_EQ(rollup_source_key("chaos8.jsonl.17"), "17");  // same seed, same key
  EXPECT_EQ(rollup_source_key("/a/b/run.jsonl"), "run.jsonl");
  EXPECT_EQ(rollup_source_key("trace.jsonl"), "trace.jsonl");
  EXPECT_EQ(rollup_source_key("noext"), "noext");
}

TEST(Rollup, CsvColumnsFollowPrecedenceAndIncludeTotal) {
  std::vector<TraceRecord> trace;
  trace.push_back(span_start(1, 0.0, "chunk", 0, 1, 1000, 1.0));
  trace.push_back(fault_edge(0.5, "blackout", 0, true));
  trace.push_back(fault_edge(2.0, "blackout", 0, false));
  trace.push_back(span_end(1, 5.0, "abandoned", 0));
  trace.push_back(span_start(2, 5.0, "chunk", 1, 1, 1000, 4.0));
  trace.push_back(span_end(2, 6.0, "delivered", 1000));
  SpanModel model = build_span_model(trace);
  attribute_misses(&model);

  std::vector<RollupRow> rows;
  rows.push_back(rollup_span_model(model, "7"));
  const std::string csv = rollup_to_csv(rows);
  const auto parsed = parse_csv(csv);
  ASSERT_EQ(parsed.size(), 3u);  // header, seed row, total row
  EXPECT_EQ(parsed[0][0], "key");
  EXPECT_EQ(parsed[0][4], "fault_blackout");
  EXPECT_EQ(parsed[1][0], "7");
  EXPECT_EQ(parsed[1][1], "2");  // spans
  EXPECT_EQ(parsed[1][2], "1");  // misses
  EXPECT_EQ(parsed[1][4], "1");  // fault_blackout count
  EXPECT_EQ(parsed[2][0], "total");
  EXPECT_EQ(parsed[2][1], "2");
  EXPECT_EQ(parsed[2][2], "1");
  // miss_rate is shortest-round-trip, parseable back to exactly 0.5.
  EXPECT_EQ(std::strtod(parsed[1][3].c_str(), nullptr), 0.5);
}

// In-process jobs invariance: the chaos campaign's attribution roll-up
// must be bitwise identical across worker counts (the 50-seed CI gate is
// this property at scale).
TEST(Rollup, ChaosAttributionIsJobsInvariant) {
  ChaosConfig cfg;
  cfg.seed_count = 4;
  cfg.chunk_count = 8;
  cfg.attribution = true;
  cfg.progress = nullptr;

  auto rollup_at = [&cfg](int jobs) {
    cfg.jobs = jobs;
    const ChaosCampaignResult res = run_chaos_campaign(cfg);
    std::vector<RollupRow> rows;
    for (const ChaosRunResult& r : res.runs) {
      EXPECT_TRUE(r.has_attribution);
      rows.push_back(r.attribution);
    }
    return rollup_to_csv(rows);
  };
  const std::string serial = rollup_at(1);
  const std::string parallel = rollup_at(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  // One row per seed plus the total; keys are the derived run seeds.
  const auto rows = parse_csv(serial);
  ASSERT_EQ(rows.size(), 2u + 4u);  // header + 4 seeds + total
  for (std::size_t i = 1; i + 1 < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0].find_first_not_of("0123456789"),
              std::string::npos);
  }
  EXPECT_EQ(rows.back()[0], "total");
}

// The attribution time series the field benches emit: spans bucketed by
// end time, columns in precedence order, keys quoted when needed.
TEST(Rollup, AttributionSeriesBucketsByEndTime) {
  std::vector<TraceRecord> trace;
  trace.push_back(span_start(1, 1.0, "chunk", 0, 1, 1000, 1.0));
  trace.push_back(span_end(1, 12.0, "abandoned", 0));
  trace.push_back(span_start(2, 12.0, "chunk", 1, 1, 1000, 30.0));
  trace.push_back(span_end(2, 14.0, "delivered", 1000));
  SpanModel model = build_span_model(trace);
  attribute_misses(&model);

  const std::string csv =
      attribution_series_csv(model, 10.0, "loc,ation/festive/rate");
  const auto rows = parse_csv(std::string(kAttribSeriesHeader) + csv);
  ASSERT_EQ(rows.size(), 2u);  // header + one bucket (both spans end in it)
  EXPECT_EQ(rows[1][0], "loc,ation/festive/rate");  // comma survived quoting
  EXPECT_EQ(std::strtod(rows[1][1].c_str(), nullptr), 10.0);
  EXPECT_EQ(rows[1][2], "2");  // spans ended
  EXPECT_EQ(rows[1][3], "1");  // misses
}

}  // namespace
}  // namespace mpdash
