// Chaos triage subsystem: run watchdogs (sim-event + wall-clock budgets),
// lossless FaultPlan / repro-bundle JSON, deterministic repro replay, and
// the delta-debugging shrinker.
//
// Determinism is the contract under test everywhere here: watchdog trips
// must be bitwise reproducible, bundles must re-serialize byte-identical,
// replays must reproduce the original violation strings, and shrinking
// must give the same minimized bundle for any --jobs count.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/chaos.h"
#include "exp/repro.h"
#include "exp/shrink.h"
#include "fault/fault.h"
#include "fault/fault_json.h"
#include "runner/campaign.h"
#include "runner/watchdog.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"
#include "util/json.h"

namespace mpdash {
namespace {

FaultEvent make_event(FaultKind kind, double at_s, double dur_s, int path,
                      double value = 0.0) {
  FaultEvent e;
  e.kind = kind;
  e.at = kTimeZero + seconds(at_s);
  e.duration = seconds(dur_s);
  e.path_id = path;
  e.value = value;
  return e;
}

// --- FaultPlan JSON ------------------------------------------------------

TEST(FaultPlanJson, RandomPlansRoundTripBitwise) {
  RandomPlanConfig cfg;
  cfg.num_events = 6;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = random_fault_plan(seed, cfg);
    const std::string text = fault_plan_to_json(plan);

    FaultPlan parsed;
    std::string err;
    ASSERT_TRUE(fault_plan_from_json(text, &parsed, &err)) << err;
    ASSERT_EQ(parsed.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind);
      EXPECT_EQ(parsed.events[i].at, plan.events[i].at);
      EXPECT_EQ(parsed.events[i].duration, plan.events[i].duration);
      EXPECT_EQ(parsed.events[i].path_id, plan.events[i].path_id);
      EXPECT_EQ(parsed.events[i].value, plan.events[i].value);  // bitwise
    }
    // serialize -> parse -> re-serialize is byte-identical.
    EXPECT_EQ(fault_plan_to_json(parsed), text) << "seed " << seed;
  }
}

TEST(FaultPlanJson, AllKindsAndAwkwardDoublesRoundTrip) {
  FaultPlan plan;
  plan.events.push_back(make_event(FaultKind::kBlackout, 1.0, 2.0, 0));
  plan.events.push_back(make_event(FaultKind::kFlap, 3.0, 4.0, 1, 0.1 + 0.2));
  FaultEvent burst = make_event(FaultKind::kLossBurst, 5.0, 6.0, 0);
  burst.ge = {1.0 / 3.0, 0.1, 0.0, 123456.789012345};
  plan.events.push_back(burst);
  plan.events.push_back(
      make_event(FaultKind::kRttSpike, 7.0, 8.0, 1, 632.776));
  plan.events.push_back(
      make_event(FaultKind::kRateCollapse, 9.0, 10.0, 0, 1e-9));
  plan.events.push_back(make_event(FaultKind::kServerStall, 11.0, 12.0, -1));
  plan.events.push_back(make_event(FaultKind::kServerReset, 13.0, 14.0, -1));

  const std::string text = fault_plan_to_json(plan);
  FaultPlan parsed;
  std::string err;
  ASSERT_TRUE(fault_plan_from_json(text, &parsed, &err)) << err;
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.events[2].ge.p_good_to_bad, 1.0 / 3.0);
  EXPECT_EQ(parsed.events[1].value, 0.1 + 0.2);
  EXPECT_EQ(fault_plan_to_json(parsed), text);
}

TEST(FaultPlanJson, RejectsMalformedInput) {
  FaultPlan plan;
  std::string err;
  EXPECT_FALSE(fault_plan_from_json("", &plan, &err));
  EXPECT_FALSE(fault_plan_from_json("{", &plan, &err));
  EXPECT_FALSE(fault_plan_from_json("[]", &plan, &err));
  EXPECT_FALSE(fault_plan_from_json("{\"events\": 7}", &plan, &err));
  EXPECT_FALSE(fault_plan_from_json(
      "{\"events\":[{\"kind\":\"nope\",\"at_ns\":0,\"duration_ns\":0}]}",
      &plan, &err));
  EXPECT_FALSE(fault_plan_from_json(
      "{\"events\":[{\"at_ns\":0,\"duration_ns\":0}]}", &plan, &err));
  // Trailing garbage after a valid document is an error, not ignored.
  EXPECT_FALSE(fault_plan_from_json("{\"events\":[]} x", &plan, &err));
  EXPECT_FALSE(err.empty());
}

// --- watchdog ------------------------------------------------------------

// A zero-delay self-rescheduling event: the canonical livelock.
void livelock(EventLoop& loop) {
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&loop, tick] { loop.schedule_in(kDurationZero, *tick); };
  loop.schedule_in(kDurationZero, *tick);
}

TEST(Watchdog, SimEventBudgetKillsLivelock) {
  // Trip counts are a pure function of the event stream, so two identical
  // runs must produce byte-identical what() strings.
  auto trip = [] {
    EventLoop loop;
    livelock(loop);
    WatchdogConfig cfg;
    cfg.max_sim_events = 10000;
    cfg.poll_interval = 64;
    RunWatchdog watchdog(loop, cfg);
    EXPECT_TRUE(watchdog.armed());
    try {
      loop.run_until(kTimeZero + seconds(1.0));
    } catch (const WatchdogTripped& e) {
      EXPECT_EQ(e.reason(), WatchdogReason::kSimEvents);
      EXPECT_GE(e.sim_events(), 10000u);
      EXPECT_LT(e.sim_events(), 10064u);  // within one poll interval
      return std::string(e.what());
    }
    ADD_FAILURE() << "livelock was not killed";
    return std::string();
  };
  const std::string first = trip();
  EXPECT_NE(first.find("watchdog: sim-event budget exhausted ("),
            std::string::npos);
  EXPECT_EQ(trip(), first);
}

TEST(Watchdog, WallClockBudgetIsABackstop) {
  EventLoop loop;
  livelock(loop);
  WatchdogConfig cfg;
  cfg.max_wall_s = 1e-9;  // any real work exceeds a nanosecond
  cfg.max_sim_events = 50'000'000;  // bounded even if wall never trips
  cfg.poll_interval = 256;
  RunWatchdog watchdog(loop, cfg);
  try {
    loop.run_until(kTimeZero + seconds(1.0));
    FAIL() << "livelock was not killed";
  } catch (const WatchdogTripped& e) {
    EXPECT_EQ(e.reason(), WatchdogReason::kWallClock);
    EXPECT_STREQ(e.what(),
                 "watchdog: wall-clock budget exceeded (0.000 s)");
  }
}

TEST(Watchdog, DisabledConfigNeverArms) {
  EventLoop loop;
  int runs = 0;
  loop.schedule_in(seconds(1.0), [&runs] { ++runs; });
  {
    RunWatchdog watchdog(loop, WatchdogConfig{});
    EXPECT_FALSE(watchdog.armed());
    loop.run();
  }
  EXPECT_EQ(runs, 1);
}

TEST(Watchdog, HookClearedOnScopeExit) {
  EventLoop loop;
  {
    WatchdogConfig cfg;
    cfg.max_sim_events = 1;
    cfg.poll_interval = 1;
    RunWatchdog watchdog(loop, cfg);
  }
  // Budget would trip on the second event if the hook survived the scope.
  for (int i = 0; i < 8; ++i) loop.schedule_in(kDurationZero, [] {});
  EXPECT_NO_THROW(loop.run());
  EXPECT_EQ(loop.executed_events(), 8u);
}

// --- repro bundles -------------------------------------------------------

ReproBundle sample_bundle() {
  ReproBundle b;
  b.seed = 0xDEADBEEFull;
  b.spec.scheme = Scheme::kMpDashDuration;
  b.spec.adaptation = "bba";
  b.spec.mptcp_scheduler = "roundrobin";
  b.chunk_count = 6;
  b.spec.inflight = 3;
  b.spec.recovery = false;
  b.spec.time_limit = seconds(30.0);
  b.spec.watchdog = WatchdogConfig{12345, 0.25, 512};
  b.plan.events.push_back(make_event(FaultKind::kServerStall, 2.0, 26.0, -1));
  b.plan.events.push_back(
      make_event(FaultKind::kRttSpike, 3.0, 1.0, 1, 0.1 + 0.2));
  b.outcome = RunOutcome::kViolation;
  b.hung_reason = "";
  b.expected_violations = {
      "session hung: time limit reached before playback finished",
      "with \"quotes\", commas,\nand a newline"};
  return b;
}

TEST(ReproBundleJson, RoundTripsBitwise) {
  const ReproBundle b = sample_bundle();
  const std::string text = repro_bundle_to_json(b);

  ReproBundle parsed;
  std::string err;
  ASSERT_TRUE(repro_bundle_from_json(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.seed, b.seed);
  EXPECT_EQ(parsed.spec, b.spec);
  EXPECT_EQ(parsed.chunk_count, b.chunk_count);
  ASSERT_EQ(parsed.plan.events.size(), b.plan.events.size());
  EXPECT_EQ(parsed.outcome, b.outcome);
  EXPECT_EQ(parsed.expected_violations, b.expected_violations);
  EXPECT_EQ(repro_bundle_to_json(parsed), text);
}

TEST(ReproBundleJson, RejectsWrongKindAndSchema) {
  ReproBundle parsed;
  std::string err;
  EXPECT_FALSE(repro_bundle_from_json("{}", &parsed, &err));
  EXPECT_FALSE(repro_bundle_from_json("not json at all", &parsed, &err));
  std::string text = repro_bundle_to_json(sample_bundle());
  const std::string needle = "\"schema\": 2";
  text.replace(text.find(needle), needle.size(), "\"schema\": 99");
  EXPECT_FALSE(repro_bundle_from_json(text, &parsed, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);
}

// A hand-built plan that deterministically violates: the origin holds
// every response for most of a session too short to finish afterwards,
// with recovery off so nothing times the requests out.
ReproBundle stalled_session_bundle() {
  ReproBundle b;
  b.seed = 7;
  b.chunk_count = 6;
  b.spec.recovery = false;
  b.spec.time_limit = seconds(30.0);
  b.plan.events.push_back(make_event(FaultKind::kServerStall, 2.0, 26.0, -1));
  return b;
}

TEST(Repro, DeterministicViolationReplaysBitwise) {
  ReproBundle b = stalled_session_bundle();
  // First run: capture what this plan actually does.
  const ChaosConfig cfg = bundle_chaos_config(b);
  Telemetry telemetry;
  const ChaosRunResult run =
      run_chaos_single(cfg, chaos_video(cfg), b.seed, b.plan, telemetry);
  ASSERT_EQ(run.outcome, RunOutcome::kViolation);
  ASSERT_FALSE(run.violations.empty());
  EXPECT_NE(run.violations[0].find("session hung"), std::string::npos);

  b.outcome = run.outcome;
  b.expected_violations = run.violations;

  // Replays reproduce the identical outcome and violation strings.
  const ReplayResult first = replay_repro_bundle(b);
  EXPECT_TRUE(first.matches) << (first.mismatches.empty()
                                     ? ""
                                     : first.mismatches[0]);
  const ReplayResult second = replay_repro_bundle(b);
  EXPECT_TRUE(second.matches);
  EXPECT_EQ(first.run.fingerprint(), second.run.fingerprint());
}

TEST(Repro, CampaignEmitsLoadableBundlesForNonOkRuns) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "mpdash_triage_bundles";
  std::filesystem::remove_all(dir);

  ChaosConfig cfg;
  cfg.seed_count = 4;
  cfg.chunk_count = 6;
  // A time limit shorter than the content guarantees every run violates
  // ("session hung"), so bundle emission is deterministic.
  cfg.session.time_limit = seconds(5.0);
  cfg.progress = nullptr;
  cfg.bundle_dir = dir.string();
  const ChaosCampaignResult res = run_chaos_campaign(cfg);

  const OutcomeCounts oc = res.outcome_counts();
  EXPECT_EQ(oc.violation, 4);
  EXPECT_FALSE(res.clean());

  int bundles = 0;
  for (const ChaosRunResult& r : res.runs) {
    const std::string path = repro_bundle_path(dir.string(), r.seed);
    ReproBundle b;
    std::string err;
    ASSERT_TRUE(load_repro_bundle(path, &b, &err)) << path << ": " << err;
    ++bundles;
    EXPECT_EQ(b.seed, r.seed);
    EXPECT_EQ(b.outcome, r.outcome);
    EXPECT_EQ(b.expected_violations, r.violations);
    const ReplayResult replay = replay_repro_bundle(b);
    EXPECT_TRUE(replay.matches)
        << path << ": "
        << (replay.mismatches.empty() ? "" : replay.mismatches[0]);
  }
  EXPECT_EQ(bundles, oc.bad());
  std::filesystem::remove_all(dir);
}

// --- hung-run quarantine -------------------------------------------------

TEST(Chaos, InjectedLivelockIsQuarantinedJobsInvariantly) {
  ChaosConfig cfg;
  cfg.seed_count = 6;
  cfg.chunk_count = 4;
  cfg.progress = nullptr;
  // Budget far above a normal 4-chunk run, so only the injected livelock
  // can exhaust it; poll often enough that the test stays fast.
  cfg.session.watchdog = WatchdogConfig{2'000'000, 0.0, 256};
  const std::uint64_t hung_seed = derive_run_seed(cfg.base_seed, "chaos/3");
  cfg.pre_session_hook = [hung_seed](EventLoop& loop, std::uint64_t seed) {
    if (seed == hung_seed) livelock(loop);
  };

  auto campaign_at = [&cfg](int jobs) {
    cfg.jobs = jobs;
    return run_chaos_campaign(cfg);
  };
  const ChaosCampaignResult serial = campaign_at(1);
  const ChaosCampaignResult parallel = campaign_at(8);

  // The campaign completed — all six runs reported, exactly one hung.
  ASSERT_EQ(serial.runs.size(), 6u);
  const OutcomeCounts oc = serial.outcome_counts();
  EXPECT_EQ(oc.hung, 1);
  EXPECT_EQ(oc.ok + oc.violation, 5);
  EXPECT_EQ(oc.crashed, 0);
  const ChaosRunResult& hung = serial.runs[3];
  EXPECT_EQ(hung.outcome, RunOutcome::kHung);
  EXPECT_EQ(hung.seed, hung_seed);
  EXPECT_NE(hung.hung_reason.find("sim-event budget exhausted"),
            std::string::npos);
  EXPECT_FALSE(serial.clean());

  // Quarantine is jobs-invariant: identical digests (the hung run's
  // fingerprint included) for any worker count.
  EXPECT_EQ(serial.digest(), parallel.digest());
  const OutcomeCounts poc = parallel.outcome_counts();
  EXPECT_EQ(poc.hung, oc.hung);
  EXPECT_EQ(poc.violation, oc.violation);
  EXPECT_EQ(poc.ok, oc.ok);
}

// --- shrinker ------------------------------------------------------------

TEST(Signature, CanonicalKindsDropRunSpecificDetail) {
  EXPECT_EQ(violation_kind(
                "chunk accounting: delivered 3 + abandoned 1 != 6"),
            "chunk accounting");
  EXPECT_EQ(violation_kind(
                "session hung: time limit reached before playback finished"),
            "session hung");
  EXPECT_EQ(violation_kind("counter player.chunks = 3, result chunks = 4"),
            "counter mismatch");
  EXPECT_EQ(violation_kind("2 fault events had no attachable target"),
            "fault target missing");
  EXPECT_EQ(violation_kind("span 9 reopened after close at t=1.5"),
            "span reopened");
  EXPECT_EQ(violation_kind("something entirely new"),
            "something entirely new");

  // Signature: outcome + sorted unique kinds; counts don't matter.
  const std::vector<std::string> a = {
      "chunk accounting: delivered 3 + abandoned 1 != 6",
      "session hung: time limit reached before playback finished"};
  const std::vector<std::string> b = {
      "session hung: time limit reached before playback finished",
      "chunk accounting: delivered 5 + abandoned 0 != 6"};
  EXPECT_EQ(violation_signature(RunOutcome::kViolation, a, false),
            violation_signature(RunOutcome::kViolation, b, false));
  EXPECT_NE(violation_signature(RunOutcome::kViolation, a, true),
            violation_signature(RunOutcome::kViolation, b, true));
  EXPECT_NE(violation_signature(RunOutcome::kHung, {}, false),
            violation_signature(RunOutcome::kOk, {}, false));
}

// Six-event plan: one server stall actually causes the hang; five benign
// short events are noise ddmin must discard.
ReproBundle noisy_bundle() {
  ReproBundle b = stalled_session_bundle();
  b.plan.events.push_back(
      make_event(FaultKind::kRttSpike, 4.0, 0.5, 0, 10.0));
  b.plan.events.push_back(make_event(FaultKind::kFlap, 6.0, 1.0, 1, 0.2));
  FaultEvent burst = make_event(FaultKind::kLossBurst, 8.0, 0.5, 0);
  burst.ge = {0.05, 0.5, 0.0, 0.1};
  b.plan.events.push_back(burst);
  b.plan.events.push_back(
      make_event(FaultKind::kRateCollapse, 10.0, 1.0, 1, 0.8));
  b.plan.events.push_back(
      make_event(FaultKind::kRttSpike, 12.0, 0.5, 1, 20.0));
  return b;
}

TEST(Shrink, MinimizesNoisyPlanToTheCulprit) {
  const ReproBundle bundle = noisy_bundle();
  ASSERT_EQ(bundle.plan.events.size(), 6u);

  ShrinkConfig cfg;
  cfg.jobs = 1;
  const ShrinkResult res = shrink_repro_bundle(bundle, cfg);

  EXPECT_TRUE(res.reproduced);
  EXPECT_EQ(res.initial_events, 6);
  EXPECT_LE(res.final_events, 2);  // the stall alone explains the hang
  // >= 50% reduction, the acceptance floor.
  EXPECT_LE(res.final_events * 2, res.initial_events);
  EXPECT_GT(res.sim_runs, 0);
  EXPECT_GT(res.steps, 0);
  EXPECT_FALSE(res.log.empty());
  // The culprit survived.
  ASSERT_FALSE(res.minimized.plan.events.empty());
  EXPECT_EQ(res.minimized.plan.events[0].kind, FaultKind::kServerStall);

  // The minimized bundle's rewritten expectations replay bitwise.
  const ReplayResult replay = replay_repro_bundle(res.minimized);
  EXPECT_TRUE(replay.matches)
      << (replay.mismatches.empty() ? "" : replay.mismatches[0]);
}

TEST(Shrink, DeterministicAcrossRepeatsAndJobs) {
  const ReproBundle bundle = noisy_bundle();
  auto shrink_at = [&bundle](int jobs) {
    ShrinkConfig cfg;
    cfg.jobs = jobs;
    return shrink_repro_bundle(bundle, cfg);
  };
  const ShrinkResult first = shrink_at(1);
  const ShrinkResult repeat = shrink_at(1);
  const ShrinkResult parallel = shrink_at(4);

  // Same minimized bundle (bitwise) and same step log every time.
  EXPECT_EQ(repro_bundle_to_json(first.minimized),
            repro_bundle_to_json(repeat.minimized));
  EXPECT_EQ(first.log, repeat.log);
  EXPECT_EQ(first.sim_runs, repeat.sim_runs);
  EXPECT_EQ(repro_bundle_to_json(first.minimized),
            repro_bundle_to_json(parallel.minimized));
  EXPECT_EQ(first.log, parallel.log);
  EXPECT_EQ(first.sim_runs, parallel.sim_runs);
}

TEST(Shrink, CleanBundleReportsNothingToShrink) {
  ReproBundle b;  // no faults, generous time limit: the run is clean
  b.seed = 3;
  b.chunk_count = 4;
  const ShrinkResult res = shrink_repro_bundle(b, ShrinkConfig{});
  EXPECT_FALSE(res.reproduced);
  EXPECT_EQ(res.sim_runs, 1);  // just the baseline probe
}

}  // namespace
}  // namespace mpdash
