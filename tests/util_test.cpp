#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace mpdash {
namespace {

TEST(Units, SecondsRoundTrip) {
  EXPECT_EQ(seconds(1.0), Duration(1'000'000'000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(70)), 70.0);
}

TEST(Units, DataRateConversions) {
  const DataRate r = DataRate::mbps(8.0);
  EXPECT_DOUBLE_EQ(r.bps(), 8e6);
  EXPECT_DOUBLE_EQ(r.as_kbps(), 8000.0);
  EXPECT_EQ(r.bytes_in(seconds(1.0)), 1'000'000);
  EXPECT_EQ(r.time_to_send(1'000'000), seconds(1.0));
}

TEST(Units, ZeroRateNeverCompletes) {
  EXPECT_EQ(DataRate::bits_per_second(0).time_to_send(1), Duration::max());
}

TEST(Units, RateArithmetic) {
  const DataRate a = DataRate::mbps(3.0);
  const DataRate b = DataRate::mbps(1.5);
  EXPECT_EQ((a + b).as_mbps(), 4.5);
  EXPECT_EQ((a - b).as_mbps(), 1.5);
  EXPECT_EQ((a * 2.0).as_mbps(), 6.0);
  EXPECT_EQ((a / 2.0).as_mbps(), 1.5);
  EXPECT_LT(b, a);
}

TEST(Units, RateOfHandlesZeroDuration) {
  EXPECT_TRUE(rate_of(1000, kDurationZero).is_zero());
  EXPECT_DOUBLE_EQ(rate_of(1'000'000, seconds(1.0)).as_mbps(), 8.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalMomentMatched) {
  Rng rng(13);
  OnlineStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.lognormal_mean_sd(5.0, 1.5));
  EXPECT_NEAR(st.mean(), 5.0, 0.1);
  EXPECT_NEAR(st.stddev(), 1.5, 0.15);
  EXPECT_GT(st.min(), 0.0);  // lognormal is strictly positive
}

TEST(Rng, SplitIndependentStreams) {
  Rng a(99);
  Rng b = a.split();
  Rng c = a.split();
  EXPECT_NE(b.next_u64(), c.next_u64());
}

TEST(Stats, OnlineStatsBasics) {
  OnlineStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  for (double v : {2.0, 4.0, 6.0}) st.add(v);
  EXPECT_EQ(st.count(), 3u);
  EXPECT_DOUBLE_EQ(st.mean(), 4.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 6.0);
  EXPECT_DOUBLE_EQ(st.sum(), 12.0);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, HarmonicMean) {
  EXPECT_DOUBLE_EQ(harmonic_mean({2.0, 2.0}), 2.0);
  EXPECT_NEAR(harmonic_mean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(harmonic_mean({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean({}), 0.0);
}

TEST(Stats, EmpiricalCdf) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(Csv, RoundTripWithQuoting) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"quote\"inside", "line\nbreak"});
  const auto rows = parse_csv(w.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1][1], "with,comma");
  EXPECT_EQ(rows[2][0], "quote\"inside");
  EXPECT_EQ(rows[2][1], "line\nbreak");
}

TEST(Csv, ParsesCrlfAndMissingTrailingNewline) {
  const auto rows = parse_csv("x,y\r\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Table, RendersAlignedCells) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.5, 1), "50.0%");
}

TEST(Table, AsciiPlotContainsLegend) {
  const std::string out =
      ascii_plot({{"series-a", {{0, 0}, {1, 1}, {2, 4}}}}, 40, 8, "x", "y");
  EXPECT_NE(out.find("series-a"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

}  // namespace
}  // namespace mpdash
