#include <gtest/gtest.h>

#include "dash/manifest.h"
#include "dash/video.h"

namespace mpdash {
namespace {

TEST(Video, PresetsMatchPaperTable3) {
  const Video bbb = big_buck_bunny();
  ASSERT_EQ(bbb.level_count(), 5);
  EXPECT_NEAR(bbb.level(0).avg_bitrate.as_mbps(), 0.58, 1e-9);
  EXPECT_NEAR(bbb.level(4).avg_bitrate.as_mbps(), 3.94, 1e-9);
  EXPECT_EQ(bbb.chunk_count(), 150);  // 10 min of 4 s chunks
  EXPECT_EQ(bbb.chunk_duration(), seconds(4.0));

  const Video hd = tears_of_steel_hd();
  EXPECT_NEAR(hd.level(4).avg_bitrate.as_mbps(), 10.0, 1e-9);
  EXPECT_NEAR(hd.level(0).avg_bitrate.as_mbps(), 1.51, 1e-9);

  EXPECT_NEAR(red_bull_playstreets().level(2).avg_bitrate.as_mbps(), 1.50,
              1e-9);
  EXPECT_NEAR(tears_of_steel().level(3).avg_bitrate.as_mbps(), 2.42, 1e-9);
}

TEST(Video, ChunkDurationControlsCount) {
  EXPECT_EQ(big_buck_bunny(seconds(6.0)).chunk_count(), 100);
  EXPECT_EQ(big_buck_bunny(seconds(10.0)).chunk_count(), 60);
}

TEST(Video, VbrSizesVaryAroundNominal) {
  const Video v = big_buck_bunny();
  const Bytes nominal = v.nominal_chunk_size(4);
  double sum = 0.0;
  Bytes lo = nominal * 10, hi = 0;
  for (int k = 0; k < v.chunk_count(); ++k) {
    const Bytes s = v.chunk_size(4, k);
    sum += static_cast<double>(s);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double mean = sum / v.chunk_count();
  EXPECT_NEAR(mean, static_cast<double>(nominal), 0.05 * nominal);
  EXPECT_LT(lo, nominal);  // actual VBR spread
  EXPECT_GT(hi, nominal);
}

TEST(Video, ComplexityCorrelatedAcrossLevels) {
  // A busy scene is bigger at every level.
  const Video v = big_buck_bunny();
  int agree = 0;
  const int n = v.chunk_count() - 1;
  for (int k = 0; k < n; ++k) {
    const bool up0 = v.chunk_size(0, k + 1) > v.chunk_size(0, k);
    const bool up4 = v.chunk_size(4, k + 1) > v.chunk_size(4, k);
    agree += up0 == up4;
  }
  EXPECT_EQ(agree, n);
}

TEST(Video, HighestLevelNotAbove) {
  const Video v = big_buck_bunny();
  EXPECT_EQ(v.highest_level_not_above(DataRate::mbps(10.0)), 4);
  EXPECT_EQ(v.highest_level_not_above(DataRate::mbps(2.5)), 3);
  EXPECT_EQ(v.highest_level_not_above(DataRate::mbps(0.1)), 0);
}

TEST(Video, DeterministicAcrossConstruction) {
  const Video a = big_buck_bunny();
  const Video b = big_buck_bunny();
  for (int k = 0; k < a.chunk_count(); k += 17) {
    EXPECT_EQ(a.chunk_size(3, k), b.chunk_size(3, k));
  }
}

TEST(Video, ValidatesArguments) {
  EXPECT_THROW(Video("x", kDurationZero, 10, {DataRate::mbps(1)}, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(
      Video("x", seconds(4.0), 10,
            {DataRate::mbps(2), DataRate::mbps(1)}, 0.1, 1),  // descending
      std::invalid_argument);
}

TEST(Manifest, XmlRoundTripPreservesEverything) {
  const Video v = big_buck_bunny();
  const std::string xml = manifest_to_xml(v);
  EXPECT_NE(xml.find("<MPD"), std::string::npos);
  EXPECT_NE(xml.find("<ChunkSizes>"), std::string::npos);

  const Video back = video_from_manifest(xml);
  EXPECT_EQ(back.name(), v.name());
  EXPECT_EQ(back.chunk_count(), v.chunk_count());
  EXPECT_EQ(back.chunk_duration(), v.chunk_duration());
  ASSERT_EQ(back.level_count(), v.level_count());
  for (int l = 0; l < v.level_count(); ++l) {
    EXPECT_NEAR(back.level(l).avg_bitrate.bps(), v.level(l).avg_bitrate.bps(),
                1.0);
    for (int k = 0; k < v.chunk_count(); k += 13) {
      EXPECT_EQ(back.chunk_size(l, k), v.chunk_size(l, k));
    }
  }
}

TEST(Manifest, EscapesVideoName) {
  const Video v("Name <with> \"specials\" & more", seconds(2.0), 3,
                {DataRate::mbps(1.0)}, 0.1, 9);
  const Video back = video_from_manifest(manifest_to_xml(v));
  EXPECT_EQ(back.name(), "Name <with> \"specials\" & more");
}

TEST(Manifest, RejectsMalformed) {
  EXPECT_THROW(video_from_manifest("not xml"), std::invalid_argument);
  EXPECT_THROW(video_from_manifest("<MPD name=\"x\" chunkDurationMs=\"0\" "
                                   "chunks=\"5\"></MPD>"),
               std::invalid_argument);
}

TEST(Manifest, ChunkUrls) {
  EXPECT_EQ(chunk_url(2, 17), "/video/chunk-2-17.m4s");
  int level = -1, chunk = -1;
  EXPECT_TRUE(parse_chunk_url("/video/chunk-2-17.m4s", level, chunk));
  EXPECT_EQ(level, 2);
  EXPECT_EQ(chunk, 17);
  EXPECT_FALSE(parse_chunk_url("/video/manifest.mpd", level, chunk));
  EXPECT_FALSE(parse_chunk_url("/other", level, chunk));
}

}  // namespace
}  // namespace mpdash
