// mpdash_sim — command-line driver for the MP-DASH simulator.
//
// Subcommands are table-driven (kCommands): `mpdash_sim --help` lists them,
// `mpdash_sim <command> --help` prints that command's options, and unknown
// commands exit 2. Bandwidth can come from constants, built-in location
// profiles, or trace CSV files (time_s,rate_mbps — see trace/trace_io.h).
//
//   mpdash_sim stream --scheme mpdash-rate --algo festive
//       --wifi 3.8 --lte 3.0 --video bbb --csv out.csv
//   mpdash_sim download --size-mb 5 --deadline 10 --no-mpdash
//   mpdash_sim sweep --algo bba --jobs 8      # parallel field-study campaign
//   mpdash_sim chaos --seed-count 50 --jobs 8 # fault-plan invariant sweep
//   mpdash_sim fleet --sessions 16 --seed 7   # N tenants, shared bottleneck

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "dash/video.h"
#include "exp/chaos.h"
#include "exp/fleet.h"
#include "exp/repro.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "exp/shrink.h"
#include "runner/campaign.h"
#include "telemetry/prometheus.h"
#include "telemetry/telemetry.h"
#include "trace/locations.h"
#include "trace/trace_io.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

using namespace mpdash;

namespace {

struct Args {
  std::string command;
  std::string input;  // positional: repro/shrink/fleet bundle path
  std::string scheme = "mpdash-rate";
  std::string algo = "festive";
  std::string video = "bbb";
  std::string location;
  std::string wifi_trace_path;
  std::string lte_trace_path;
  std::string csv_path;
  std::string metrics_path;  // per-second metrics timeline CSV
  std::string metrics_prom_path;  // final-state Prometheus exposition text
  std::string trace_path;    // structured event trace JSONL
  std::string trace_types;   // --trace-types filter (comma-separated)
  std::string series_path;   // chaos: aggregated per-run QoE series CSV
  double series_interval_s = 1.0;
  std::string attrib_path;   // chaos: per-seed miss-attribution roll-up CSV
  std::optional<double> wifi_mbps;  // unset = per-command default
  std::optional<double> lte_mbps;
  double chunk_s = 4.0;
  double alpha = 1.0;
  double size_mb = 5.0;
  double deadline_s = 10.0;
  bool use_mpdash = true;
  std::string mptcp_scheduler = "minrtt";
  int jobs = 0;  // campaign workers; 0 = MPDASH_JOBS env, then cores
  int seed_count = -1;              // campaigns; -1 = per-command default
  unsigned long long seed = 1;      // campaign base seed
  bool recovery = true;             // chaos/fleet: --no-recovery disables
  int inflight = 1;                 // player prefetch window
  int chunks = 0;                   // chaos/fleet chunk count; 0 = default
  bool keep_going = false;          // exit 0 despite bad outcomes
  std::string bundle_dir;           // repro bundles for bad runs
  bool strict = false;              // shrink: exact-string oracle
  std::string out_path;             // shrink: minimized bundle path
  // --- fleet ------------------------------------------------------------
  int sessions = 16;                // tenant count
  double stagger_s = 1.0;           // join stagger between tenants
  std::string discipline = "fq";    // shared-link arbitration: fifo|fq
  std::string mix;                  // scheme[:algo] list, cycled per tenant
  bool chaos = false;               // fleet: random fault plan per seed
};

// Table-driven subcommand registry: one row per command. `--help` renders
// the list from this table; per-command `--help` prints `usage`.
struct CommandSpec {
  const char* name;
  const char* summary;
  const char* usage;  // option help, one "  --flag ..." line each
  int (*handler)(const Args&);
};

int cmd_stream(const Args& a);
int cmd_download(const Args& a);
int cmd_sweep(const Args& a);
int cmd_chaos(const Args& a);
int cmd_fleet(const Args& a);
int cmd_repro(const Args& a);
int cmd_shrink(const Args& a);
int cmd_locations(const Args& a);

constexpr const char kNetworkUsage[] =
    "  --wifi <mbps> | --wifi-trace <csv>   --lte <mbps> | --lte-trace <csv>\n"
    "  --location <name from `locations`>\n";

const CommandSpec kCommands[] = {
    {"stream", "one DASH streaming session, every knob on the command line",
     "  --scheme wifi-only|baseline|mpdash-rate|mpdash-duration\n"
     "  --algo gpac|festive|bba|bba-c|mpc\n"
     "  --video bbb|redbull|tears|tears-hd   --chunk <seconds>\n"
     "  --wifi <mbps> | --wifi-trace <csv>   --lte <mbps> | --lte-trace "
     "<csv>\n"
     "  --location <name from `locations`>\n"
     "  --alpha <0..1>  --scheduler minrtt|roundrobin\n"
     "  --inflight <n>   player prefetch window, 1 = sequential\n"
     "  --csv <path>   write the result row as CSV\n"
     "  --metrics <path>   per-second metrics timeline "
     "(CSV: time_s,metric,value)\n"
     "  --metrics-prom <path>   final metrics as Prometheus text exposition\n"
     "  --trace <path>     structured event trace (JSONL)\n"
     "  --trace-types a,b,c   keep only these record types\n",
     cmd_stream},
    {"download", "one deadline-aware file download (scheduler only, §7.2)",
     "  --size-mb <mb> --deadline <s> --no-mpdash\n"
     "  --wifi <mbps> | --wifi-trace <csv>   --lte <mbps> | --lte-trace "
     "<csv>\n"
     "  --location <name>  --alpha <0..1>  --scheduler minrtt|roundrobin\n"
     "  --metrics <path>  --trace <path>  --trace-types a,b,c\n",
     cmd_download},
    {"sweep", "baseline-vs-MP-DASH field-study campaign over all locations",
     "  --scheme mpdash-rate|mpdash-duration   --algo <name>\n"
     "  --video <name>  --chunk <seconds>  --alpha <0..1>\n"
     "  --jobs <n>   campaign workers (default: hardware cores)\n"
     "  --csv <path>   per-location results\n",
     cmd_sweep},
    {"chaos", "seeded random-fault campaign with per-run invariant audits",
     "  --seed-count <n> (default 50)  --seed <base>  --jobs <n>\n"
     "  --scheme <name>  --algo <name>  --scheduler <name>  --alpha <0..1>\n"
     "  --inflight <n>  --chunks <n>  --no-recovery\n"
     "  --csv <path>   per-seed results\n"
     "  --series <path>  per-run QoE/byte-share time series CSV\n"
     "  --series-interval <s>   series cadence (default 1.0)\n"
     "  --attrib <path>  per-seed deadline-miss attribution roll-up CSV\n"
     "  --trace <path>  per-run JSONL traces  --trace-types a,b,c\n"
     "  --bundle-dir <dir>   write repro_<seed>.json for every non-ok run\n"
     "  --keep-going   exit 0 even when runs report violations\n",
     cmd_chaos},
    {"fleet",
     "N concurrent sessions contending on one shared WiFi+LTE bottleneck",
     "  --sessions <n> (default 16)   --seed <base>   --seed-count <n> "
     "(default 1)\n"
     "  --jobs <n>   campaign workers (seeds run in parallel)\n"
     "  --scheme <name>  --algo <name>   every tenant's session spec\n"
     "  --mix scheme[:algo],scheme[:algo],...   cycled per tenant "
     "(overrides --scheme/--algo)\n"
     "  --discipline fifo|fq   shared-link arbitration (default fq)\n"
     "  --wifi <mbps> --lte <mbps>   shared aggregate capacities "
     "(default 20/12)\n"
     "  --stagger <s>   join stagger between tenants (default 1.0)\n"
     "  --chunks <n>   chunks per tenant (default 20)  --no-recovery\n"
     "  --chaos   seeded random fault plan per seed on the shared links\n"
     "  --csv <path>   per-session rows, bitwise identical for any --jobs\n"
     "  --bundle-dir <dir>   write fleet_repro_<seed>.json for non-ok runs\n"
     "  --keep-going   exit 0 even when runs report violations\n"
     "  fleet <bundle.json>   replay a fleet repro bundle instead\n",
     cmd_fleet},
    {"repro", "replay a chaos repro bundle and verify the failure reproduces",
     "  repro <bundle.json>\n",
     cmd_repro},
    {"shrink", "ddmin-minimize a repro bundle's fault plan",
     "  shrink <bundle.json>   (writes <bundle>.min.json + .log)\n"
     "  --out <path>   minimized bundle destination\n"
     "  --strict       oracle matches exact violation strings\n"
     "  --jobs <n>\n",
     cmd_shrink},
    {"locations", "list the built-in field-study location profiles", "",
     cmd_locations},
};

const CommandSpec* find_command(const std::string& name) {
  for (const CommandSpec& c : kCommands) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

void print_usage(std::FILE* out) {
  std::fprintf(out, "usage: mpdash_sim <command> [options]\n\ncommands:\n");
  for (const CommandSpec& c : kCommands) {
    std::fprintf(out, "  %-10s %s\n", c.name, c.summary);
  }
  std::fprintf(out,
               "\nrun `mpdash_sim <command> --help` for that command's "
               "options\n");
}

void print_command_usage(const CommandSpec& c, std::FILE* out) {
  std::fprintf(out, "usage: mpdash_sim %s [options]\n%s\n%s", c.name,
               c.summary, c.usage);
}

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  print_usage(stderr);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  if (std::strcmp(argv[1], "-h") == 0 || std::strcmp(argv[1], "--help") == 0) {
    print_usage(stdout);
    std::exit(0);
  }
  Args a;
  a.command = argv[1];
  const CommandSpec* spec = find_command(a.command);
  if (spec == nullptr) usage(("unknown command " + a.command).c_str());
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "-h" || flag == "--help") {
      print_command_usage(*spec, stdout);
      std::exit(0);
    }
    else if (flag == "--scheme") a.scheme = value();
    else if (flag == "--algo") a.algo = value();
    else if (flag == "--video") a.video = value();
    else if (flag == "--location") a.location = value();
    else if (flag == "--wifi") a.wifi_mbps = std::atof(value().c_str());
    else if (flag == "--lte") a.lte_mbps = std::atof(value().c_str());
    else if (flag == "--wifi-trace") a.wifi_trace_path = value();
    else if (flag == "--lte-trace") a.lte_trace_path = value();
    else if (flag == "--chunk") a.chunk_s = std::atof(value().c_str());
    else if (flag == "--alpha") a.alpha = std::atof(value().c_str());
    else if (flag == "--scheduler") a.mptcp_scheduler = value();
    else if (flag == "--size-mb") a.size_mb = std::atof(value().c_str());
    else if (flag == "--deadline") a.deadline_s = std::atof(value().c_str());
    else if (flag == "--no-mpdash") a.use_mpdash = false;
    else if (flag == "--jobs") a.jobs = std::atoi(value().c_str());
    else if (flag == "--seed-count") a.seed_count = std::atoi(value().c_str());
    else if (flag == "--seed") a.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (flag == "--no-recovery") a.recovery = false;
    else if (flag == "--inflight") a.inflight = std::atoi(value().c_str());
    else if (flag == "--chunks") a.chunks = std::atoi(value().c_str());
    else if (flag == "--csv") a.csv_path = value();
    else if (flag == "--metrics") a.metrics_path = value();
    else if (flag == "--metrics-prom") a.metrics_prom_path = value();
    else if (flag == "--trace") a.trace_path = value();
    else if (flag == "--trace-types") a.trace_types = value();
    else if (flag == "--series") a.series_path = value();
    else if (flag == "--series-interval")
      a.series_interval_s = std::atof(value().c_str());
    else if (flag == "--attrib") a.attrib_path = value();
    else if (flag == "--bundle-dir") a.bundle_dir = value();
    else if (flag == "--keep-going") a.keep_going = true;
    else if (flag == "--strict") a.strict = true;
    else if (flag == "--out") a.out_path = value();
    else if (flag == "--sessions") a.sessions = std::atoi(value().c_str());
    else if (flag == "--stagger") a.stagger_s = std::atof(value().c_str());
    else if (flag == "--discipline") a.discipline = value();
    else if (flag == "--mix") a.mix = value();
    else if (flag == "--chaos") a.chaos = true;
    else if (!flag.empty() && flag[0] != '-' && a.input.empty())
      a.input = flag;
    else usage(("unknown flag " + flag).c_str());
  }
  return a;
}

Scheme parse_scheme(const std::string& s) {
  Scheme out;
  if (!scheme_from_string(s, &out)) usage(("unknown scheme " + s).c_str());
  return out;
}

Video pick_video(const Args& a) {
  const Duration chunk = seconds(a.chunk_s);
  if (a.video == "bbb") return big_buck_bunny(chunk);
  if (a.video == "redbull") return red_bull_playstreets(chunk);
  if (a.video == "tears") return tears_of_steel(chunk);
  if (a.video == "tears-hd") return tears_of_steel_hd(chunk);
  usage(("unknown video " + a.video).c_str());
}

ScenarioConfig build_network(const Args& a, Duration horizon) {
  if (!a.location.empty()) {
    for (const auto& loc : field_study_locations()) {
      if (loc.name == a.location) {
        ScenarioConfig cfg;
        cfg.wifi_down = loc.wifi_trace(horizon);
        cfg.lte_down = loc.lte_trace(horizon);
        cfg.wifi_rtt = loc.wifi_rtt;
        cfg.lte_rtt = loc.lte_rtt;
        return cfg;
      }
    }
    usage(("unknown location " + a.location).c_str());
  }
  ScenarioConfig cfg =
      constant_scenario(DataRate::mbps(a.wifi_mbps.value_or(3.8)),
                        DataRate::mbps(a.lte_mbps.value_or(3.0)));
  if (!a.wifi_trace_path.empty()) cfg.wifi_down = load_trace(a.wifi_trace_path);
  if (!a.lte_trace_path.empty()) cfg.lte_down = load_trace(a.lte_trace_path);
  return cfg;
}

int cmd_locations(const Args&) {
  TextTable table({"name", "venue", "state", "scenario", "WiFi Mbps",
                   "WiFi RTT ms", "LTE Mbps", "LTE RTT ms"});
  for (const auto& loc : field_study_locations()) {
    table.add_row({loc.name, loc.venue, loc.state,
                   std::to_string(static_cast<int>(loc.scenario)),
                   TextTable::num(loc.wifi_mean.as_mbps(), 2),
                   TextTable::num(to_milliseconds(loc.wifi_rtt), 1),
                   TextTable::num(loc.lte_mean.as_mbps(), 2),
                   TextTable::num(to_milliseconds(loc.lte_rtt), 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

// Resolves --trace-types into a sink mask (everything when unset).
std::uint32_t trace_type_mask(const Args& a) {
  if (a.trace_types.empty()) return ~0u;
  std::uint32_t mask = 0;
  if (!parse_trace_types(a.trace_types, &mask) || mask == 0) {
    usage(("bad --trace-types '" + a.trace_types +
           "' (names as in trace JSON \"type\", comma-separated)")
              .c_str());
  }
  return mask;
}

int cmd_stream(const Args& a) {
  const Video video = pick_video(a);
  Scenario scenario(build_network(a, video.total_duration() + seconds(180.0)));
  SessionConfig cfg;
  cfg.scheme = parse_scheme(a.scheme);
  cfg.adaptation = a.algo;
  cfg.alpha = a.alpha;
  cfg.mptcp_scheduler = a.mptcp_scheduler;
  cfg.player.max_inflight_chunks = std::max(1, a.inflight);

  Telemetry telemetry;
  MetricsTimeline timeline;
  SessionEnv env;
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<TypeFilterSink> filter;
  if (!a.metrics_path.empty() || !a.metrics_prom_path.empty() ||
      !a.trace_path.empty()) {
    env.telemetry = &telemetry;
    if (!a.metrics_path.empty()) env.metrics = &timeline;
    if (!a.trace_path.empty()) {
      jsonl = std::make_unique<JsonlSink>(a.trace_path);
      if (!jsonl->ok()) {
        std::fprintf(stderr, "cannot write %s\n", a.trace_path.c_str());
        return 1;
      }
      const std::uint32_t mask = trace_type_mask(a);
      if (mask != ~0u) {
        filter = std::make_unique<TypeFilterSink>(jsonl.get(), mask);
        telemetry.add_sink(filter.get());
      } else {
        telemetry.add_sink(jsonl.get());
      }
    }
  }

  const SessionResult res = run_streaming_session(scenario, video, cfg, env);

  if (!a.metrics_path.empty()) {
    if (!write_text_file(a.metrics_path, timeline.to_csv())) {
      std::fprintf(stderr, "cannot write %s\n", a.metrics_path.c_str());
      return 1;
    }
    std::printf("metrics timeline (%zu snapshots) written to %s\n",
                timeline.snapshots().size(), a.metrics_path.c_str());
  }
  if (!a.metrics_prom_path.empty()) {
    PrometheusOptions prom;
    prom.labels = {{"video", video.name()},
                   {"algo", a.algo},
                   {"scheme", a.scheme}};
    const MetricsSnapshot snap =
        telemetry.metrics().snapshot(TimePoint(seconds(res.session_s)));
    if (!write_text_file(a.metrics_prom_path, to_prometheus(snap, prom))) {
      std::fprintf(stderr, "cannot write %s\n", a.metrics_prom_path.c_str());
      return 1;
    }
    std::printf("prometheus metrics (%zu families) written to %s\n",
                snap.values.size(), a.metrics_prom_path.c_str());
  }
  if (jsonl) {
    std::printf("trace (%llu records) written to %s\n",
                static_cast<unsigned long long>(jsonl->records_written()),
                a.trace_path.c_str());
    telemetry.remove_sink(filter ? static_cast<TraceSink*>(filter.get())
                                 : jsonl.get());
  }

  std::printf("session: %s / %s / %s\n", video.name().c_str(),
              a.algo.c_str(), a.scheme.c_str());
  TextTable table({"metric", "value"});
  table.add_row({"completed", res.completed ? "yes" : "NO (time limit)"});
  table.add_row({"chunks", std::to_string(res.chunks)});
  table.add_row({"cellular MB",
                 TextTable::num(static_cast<double>(res.cell_bytes) / 1e6)});
  table.add_row({"wifi MB",
                 TextTable::num(static_cast<double>(res.wifi_bytes) / 1e6)});
  table.add_row({"cellular share", TextTable::pct(res.cell_fraction, 1)});
  table.add_row({"avg bitrate Mbps", TextTable::num(res.avg_bitrate_mbps)});
  table.add_row({"steady bitrate Mbps",
                 TextTable::num(res.steady_avg_bitrate_mbps)});
  table.add_row({"stalls", std::to_string(res.stalls)});
  table.add_row({"quality switches", std::to_string(res.switches)});
  table.add_row({"radio energy J", TextTable::num(res.energy_j(), 1)});
  table.add_row({"deadline misses", std::to_string(res.deadline_misses)});
  std::printf("%s", table.render().c_str());

  if (!a.csv_path.empty()) {
    CsvWriter csv({"video", "algo", "scheme", "completed", "chunks",
                   "cell_mb", "wifi_mb", "avg_mbps", "steady_mbps", "stalls",
                   "switches", "energy_j", "misses"});
    csv.add_row({video.name(), a.algo, a.scheme,
                 res.completed ? "1" : "0", std::to_string(res.chunks),
                 TextTable::num(static_cast<double>(res.cell_bytes) / 1e6, 3),
                 TextTable::num(static_cast<double>(res.wifi_bytes) / 1e6, 3),
                 TextTable::num(res.avg_bitrate_mbps, 3),
                 TextTable::num(res.steady_avg_bitrate_mbps, 3),
                 std::to_string(res.stalls), std::to_string(res.switches),
                 TextTable::num(res.energy_j(), 1),
                 std::to_string(res.deadline_misses)});
    if (!csv.write_file(a.csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", a.csv_path.c_str());
      return 1;
    }
    std::printf("result written to %s\n", a.csv_path.c_str());
  }
  return res.completed ? 0 : 1;
}

int cmd_download(const Args& a) {
  Scenario scenario(build_network(a, seconds(600.0)));
  DownloadConfig cfg;
  cfg.size = static_cast<Bytes>(a.size_mb * 1e6);
  cfg.deadline = seconds(a.deadline_s);
  cfg.use_mpdash = a.use_mpdash;
  cfg.alpha = a.alpha;
  cfg.mptcp_scheduler = a.mptcp_scheduler;
  cfg.warmup = true;

  Telemetry telemetry;
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<TypeFilterSink> filter;
  if (!a.metrics_path.empty() || !a.trace_path.empty()) {
    cfg.telemetry = &telemetry;
    if (!a.trace_path.empty()) {
      jsonl = std::make_unique<JsonlSink>(a.trace_path);
      if (!jsonl->ok()) {
        std::fprintf(stderr, "cannot write %s\n", a.trace_path.c_str());
        return 1;
      }
      const std::uint32_t mask = trace_type_mask(a);
      if (mask != ~0u) {
        filter = std::make_unique<TypeFilterSink>(jsonl.get(), mask);
        telemetry.add_sink(filter.get());
      } else {
        telemetry.add_sink(jsonl.get());
      }
    }
  }

  const DownloadResult res = run_download_session(scenario, cfg);

  if (!a.metrics_path.empty()) {
    // Downloads are short; export a single end-of-run snapshot, stamped
    // at the transfer finish (the loop itself drains to the trace horizon).
    MetricsTimeline timeline;
    timeline.record(telemetry.metrics().snapshot(res.finish_time));
    if (!write_text_file(a.metrics_path, timeline.to_csv())) {
      std::fprintf(stderr, "cannot write %s\n", a.metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", a.metrics_path.c_str());
  }
  if (jsonl) {
    std::printf("trace (%llu records) written to %s\n",
                static_cast<unsigned long long>(jsonl->records_written()),
                a.trace_path.c_str());
    telemetry.remove_sink(filter ? static_cast<TraceSink*>(filter.get())
                                 : jsonl.get());
  }
  std::printf("%.1f MB with %.1f s deadline (%s):\n", a.size_mb,
              a.deadline_s, a.use_mpdash ? "MP-DASH" : "vanilla MPTCP");
  std::printf("  finish %.2f s (%s), LTE %.2f MB, WiFi %.2f MB, "
              "energy %.1f J\n",
              to_seconds(res.finish_time),
              res.deadline_missed ? "MISSED" : "met",
              static_cast<double>(res.cell_bytes) / 1e6,
              static_cast<double>(res.wifi_bytes) / 1e6, res.energy_j());
  return res.completed && !res.deadline_missed ? 0 : 1;
}

// Parallel field-study campaign: baseline vs the chosen MP-DASH scheme at
// every built-in location, sharded over --jobs workers. The table and the
// optional CSV are assembled in location order after the pool drains, so
// they are identical for any job count.
int cmd_sweep(const Args& a) {
  const Scheme scheme = parse_scheme(a.scheme);
  if (scheme == Scheme::kBaseline || scheme == Scheme::kWifiOnly) {
    usage("sweep needs an MP-DASH scheme (mpdash-rate or mpdash-duration)");
  }
  const Video video = pick_video(a);
  const Duration horizon = video.total_duration() + seconds(180.0);

  const auto& locations = field_study_locations();
  struct Pair {
    SessionResult base;
    SessionResult mpd;
  };
  Campaign<Pair> campaign("sweep/" + a.algo);
  for (const auto& loc : locations) {
    campaign.add(loc.name + "/" + a.algo + "/" + a.scheme,
                 [&loc, &video, &a, scheme, horizon](RunContext&) {
                   ScenarioConfig net;
                   net.wifi_down = loc.wifi_trace(horizon);
                   net.lte_down = loc.lte_trace(horizon);
                   net.wifi_rtt = loc.wifi_rtt;
                   net.lte_rtt = loc.lte_rtt;

                   SessionConfig cfg;
                   cfg.adaptation = a.algo;
                   cfg.alpha = a.alpha;
                   cfg.mptcp_scheduler = a.mptcp_scheduler;
                   Pair pair;
                   cfg.scheme = Scheme::kBaseline;
                   Scenario base_sc(net);
                   pair.base = run_streaming_session(base_sc, video, cfg);
                   cfg.scheme = scheme;
                   Scenario mpd_sc(net);
                   pair.mpd = run_streaming_session(mpd_sc, video, cfg);
                   return pair;
                 });
  }
  CampaignOptions opts;
  opts.jobs = a.jobs;
  const auto res = campaign.run(opts);
  if (!res.all_ok()) {
    for (const RunReport& r : res.reports) {
      if (!r.ok) {
        std::fprintf(stderr, "run '%s' failed: %s\n", r.key.c_str(),
                     r.error.c_str());
      }
    }
    return 1;
  }

  TextTable table({"location", "scenario", "cell saving", "bitrate delta",
                   "stalls"});
  CsvWriter csv({"location", "scenario", "algo", "scheme", "base_cell_mb",
                 "mpdash_cell_mb", "cell_saving", "bitrate_delta_mbps",
                 "stalls"});
  std::vector<double> savings;
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const auto& loc = locations[i];
    const Pair& pair = res.results[i];
    const double saving =
        pair.base.cell_bytes > 0
            ? 1.0 - static_cast<double>(pair.mpd.cell_bytes) /
                        static_cast<double>(pair.base.cell_bytes)
            : 0.0;
    const double delta = pair.mpd.steady_avg_bitrate_mbps -
                         pair.base.steady_avg_bitrate_mbps;
    savings.push_back(saving);
    table.add_row({loc.name, std::to_string(static_cast<int>(loc.scenario)),
                   TextTable::pct(saving, 1), TextTable::num(delta, 2),
                   std::to_string(pair.mpd.stalls)});
    csv.add_row({loc.name, std::to_string(static_cast<int>(loc.scenario)),
                 a.algo, a.scheme,
                 TextTable::num(static_cast<double>(pair.base.cell_bytes) / 1e6, 3),
                 TextTable::num(static_cast<double>(pair.mpd.cell_bytes) / 1e6, 3),
                 TextTable::num(saving, 4), TextTable::num(delta, 3),
                 std::to_string(pair.mpd.stalls)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("cellular savings: p25 %.0f%%, median %.0f%%, p75 %.0f%%\n",
              percentile(savings, 25) * 100, percentile(savings, 50) * 100,
              percentile(savings, 75) * 100);
  std::printf("campaign: %d runs on %d workers, %.2fs wall (serial est "
              "%.2fs, speedup %.2fx)\n",
              res.stats.runs, res.stats.jobs, res.stats.wall_s,
              res.stats.run_wall_sum_s, res.stats.speedup());
  if (!a.csv_path.empty()) {
    if (!csv.write_file(a.csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", a.csv_path.c_str());
      return 1;
    }
    std::printf("results written to %s\n", a.csv_path.c_str());
  }
  return 0;
}

// Chaos campaign: N seeded random fault plans through the full stack with
// recovery on, invariants audited per run. Exit status is the gate CI
// uses: 0 only when every invariant held on every seed.
int cmd_chaos(const Args& a) {
  ChaosConfig cfg;
  cfg.seed_count = a.seed_count < 0 ? 50 : a.seed_count;
  cfg.base_seed = a.seed;
  cfg.jobs = a.jobs;
  cfg.session.scheme = parse_scheme(a.scheme);
  cfg.session.adaptation = a.algo;
  cfg.session.mptcp_scheduler = a.mptcp_scheduler;
  cfg.session.alpha = a.alpha;
  cfg.session.recovery = a.recovery;
  cfg.session.inflight = a.inflight;
  if (a.chunks > 0) cfg.chunk_count = a.chunks;
  cfg.trace_path = a.trace_path;
  cfg.trace_types = trace_type_mask(a);
  cfg.series_interval =
      a.series_path.empty() ? kDurationZero : seconds(a.series_interval_s);
  cfg.attribution = !a.attrib_path.empty();
  cfg.bundle_dir = a.bundle_dir;

  const ChaosCampaignResult res = run_chaos_campaign(cfg);

  TextTable table({"seed", "outcome", "done", "chunks", "abandoned",
                   "retries", "sf", "reinj", "timeouts", "violations"});
  for (const ChaosRunResult& r : res.runs) {
    table.add_row({std::to_string(r.seed), to_string(r.outcome),
                   r.completed ? "yes" : "NO",
                   std::to_string(r.chunks_delivered),
                   std::to_string(r.chunks_abandoned),
                   std::to_string(r.chunk_retries),
                   std::to_string(r.subflow_failures),
                   std::to_string(r.reinjected_packets),
                   std::to_string(r.http_timeouts),
                   std::to_string(r.violations.size())});
  }
  std::printf("%s", table.render().c_str());
  for (const ChaosRunResult& r : res.runs) {
    if (!r.hung_reason.empty()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(r.seed),
                   r.hung_reason.c_str());
    }
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(r.seed), v.c_str());
    }
  }
  const int violations = res.violation_count();
  const OutcomeCounts oc = res.outcome_counts();
  std::printf("chaos: %d seeds on %d workers, %.2fs wall, recovery %s, "
              "%d invariant violation%s\n",
              res.stats.runs, res.stats.jobs, res.stats.wall_s,
              a.recovery ? "on" : "OFF", violations,
              violations == 1 ? "" : "s");
  std::printf("outcomes: %d ok, %d violation, %d hung, %d crashed\n", oc.ok,
              oc.violation, oc.hung, oc.crashed);
  if (!a.csv_path.empty()) {
    CsvWriter csv({"seed", "outcome", "completed", "chunks", "abandoned",
                   "retries", "stalls", "subflow_failures", "reinjected",
                   "timeouts", "violations"});
    for (const ChaosRunResult& r : res.runs) {
      csv.add_row({std::to_string(r.seed), to_string(r.outcome),
                   r.completed ? "1" : "0",
                   std::to_string(r.chunks_delivered),
                   std::to_string(r.chunks_abandoned),
                   std::to_string(r.chunk_retries), std::to_string(r.stalls),
                   std::to_string(r.subflow_failures),
                   std::to_string(r.reinjected_packets),
                   std::to_string(r.http_timeouts),
                   std::to_string(r.violations.size())});
    }
    if (!csv.write_file(a.csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", a.csv_path.c_str());
      return 1;
    }
    std::printf("results written to %s\n", a.csv_path.c_str());
  }
  if (!a.series_path.empty()) {
    // Runs land in seed order regardless of --jobs, so the aggregate is
    // bitwise stable for any worker count.
    std::string series(kChaosSeriesHeader);
    for (const ChaosRunResult& r : res.runs) series += r.series_csv;
    if (!write_text_file(a.series_path, series)) {
      std::fprintf(stderr, "cannot write %s\n", a.series_path.c_str());
      return 1;
    }
    std::printf("series written to %s\n", a.series_path.c_str());
  }
  if (!a.attrib_path.empty()) {
    // Rows sort by numeric seed — the same order `mpdash_trace rollup`
    // gives the campaign's --trace files — so the CSV is bitwise
    // identical for any --jobs value AND to the offline tool's roll-up
    // (the in-process capture feeds the same span model).
    std::vector<RollupRow> rows;
    rows.reserve(res.runs.size());
    for (const ChaosRunResult& r : res.runs) {
      if (r.has_attribution) rows.push_back(r.attribution);
    }
    std::sort(rows.begin(), rows.end(),
              [](const RollupRow& x, const RollupRow& y) {
                const unsigned long long vx =
                    std::strtoull(x.key.c_str(), nullptr, 10);
                const unsigned long long vy =
                    std::strtoull(y.key.c_str(), nullptr, 10);
                if (vx != vy) return vx < vy;
                return x.key < y.key;
              });
    if (!write_text_file(a.attrib_path, rollup_to_csv(rows))) {
      std::fprintf(stderr, "cannot write %s\n", a.attrib_path.c_str());
      return 1;
    }
    std::printf("attribution roll-up written to %s\n", a.attrib_path.c_str());
  }
  if (!a.trace_path.empty()) {
    std::printf("per-run traces written to %s%s\n", a.trace_path.c_str(),
                cfg.seed_count > 1 ? ".<seed>" : "");
  }
  if (!a.bundle_dir.empty() && oc.bad() > 0) {
    std::printf("repro bundles for %d non-ok run%s written to %s\n", oc.bad(),
                oc.bad() == 1 ? "" : "s", a.bundle_dir.c_str());
  }
  // The exit gate CI keys off: any violation, hang, or crash is a
  // failure; --keep-going demotes them to report-only.
  return a.keep_going ? 0 : (oc.bad() == 0 ? 0 : 1);
}

// Parses the --mix list: comma-separated scheme[:algo] entries, cycled
// over tenants by run_fleet.
std::vector<SessionSpec> parse_mix(const Args& a) {
  std::vector<SessionSpec> mix;
  SessionSpec base;
  base.scheme = parse_scheme(a.scheme);
  base.adaptation = a.algo;
  base.mptcp_scheduler = a.mptcp_scheduler;
  base.alpha = a.alpha;
  base.inflight = std::max(1, a.inflight);
  base.recovery = a.recovery;
  if (a.mix.empty()) {
    mix.push_back(base);
    return mix;
  }
  std::string rest = a.mix;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string entry = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    if (entry.empty()) continue;
    SessionSpec spec = base;
    const std::size_t colon = entry.find(':');
    spec.scheme = parse_scheme(entry.substr(0, colon));
    if (colon != std::string::npos) spec.adaptation = entry.substr(colon + 1);
    mix.push_back(std::move(spec));
  }
  if (mix.empty()) usage(("empty --mix '" + a.mix + "'").c_str());
  return mix;
}

int replay_fleet(const Args& a) {
  FleetBundle bundle;
  std::string err;
  if (!load_fleet_bundle(a.input, &bundle, &err)) {
    usage(("cannot load fleet bundle " + a.input + ": " + err).c_str());
  }
  std::printf("fleet repro: %s\n", a.input.c_str());
  std::printf("  seed %llu, %d sessions, %d chunks, discipline %s\n",
              static_cast<unsigned long long>(bundle.seed),
              bundle.config.sessions, bundle.config.chunk_count,
              to_string(bundle.config.discipline));
  std::printf("  fault plan (%zu events), expected outcome %s, "
              "%zu violation%s\n",
              bundle.plan.events.size(), to_string(bundle.outcome),
              bundle.expected_violations.size(),
              bundle.expected_violations.size() == 1 ? "" : "s");
  const FleetReplayResult replay = replay_fleet_bundle(bundle);
  std::printf("  replayed outcome %s, %zu violation%s\n",
              to_string(replay.run.outcome), replay.run.violations.size(),
              replay.run.violations.size() == 1 ? "" : "s");
  if (replay.matches) {
    std::printf("fleet repro: reproduced\n");
    return 0;
  }
  for (const std::string& m : replay.mismatches) {
    std::fprintf(stderr, "mismatch: %s\n", m.c_str());
  }
  std::fprintf(stderr, "fleet repro: did NOT reproduce\n");
  return 1;
}

// Fleet workload: per seed, N tenants share one WiFi+LTE bottleneck pair
// on a single event loop; seeds fan out over the campaign runner. The
// per-session CSV lands in (seed, session) order for any --jobs count.
int cmd_fleet(const Args& a) {
  if (!a.input.empty()) return replay_fleet(a);

  FleetCampaignConfig cfg;
  cfg.fleet.sessions = std::max(1, a.sessions);
  if (a.chunks > 0) cfg.fleet.chunk_count = a.chunks;
  cfg.fleet.mix = parse_mix(a);
  if (a.discipline == "fifo") {
    cfg.fleet.discipline = QueueDiscipline::kFifo;
  } else if (a.discipline == "fq") {
    cfg.fleet.discipline = QueueDiscipline::kFairQueue;
  } else {
    usage(("unknown discipline " + a.discipline + " (fifo|fq)").c_str());
  }
  if (a.wifi_mbps) cfg.fleet.wifi_mbps = *a.wifi_mbps;
  if (a.lte_mbps) cfg.fleet.lte_mbps = *a.lte_mbps;
  cfg.fleet.join_stagger = seconds(a.stagger_s);
  cfg.seed_count = a.seed_count < 0 ? 1 : a.seed_count;
  cfg.base_seed = a.seed;
  cfg.jobs = a.jobs;
  cfg.chaos = a.chaos;
  cfg.bundle_dir = a.bundle_dir;

  const FleetCampaignResult res = run_fleet_campaign(cfg);

  TextTable table({"seed", "outcome", "done", "qoe mean", "qoe p10",
                   "jain", "cell share", "violations"});
  for (const FleetResult& r : res.runs) {
    table.add_row({std::to_string(r.seed), to_string(r.outcome),
                   std::to_string(r.completed) + "/" +
                       std::to_string(cfg.fleet.sessions),
                   TextTable::num(r.qoe_mean, 3),
                   TextTable::num(r.qoe_p10, 3),
                   TextTable::num(r.jain_fairness, 4),
                   TextTable::pct(r.cell_fraction, 1),
                   std::to_string(r.violations.size())});
  }
  std::printf("%s", table.render().c_str());
  for (const FleetResult& r : res.runs) {
    if (!r.hung_reason.empty()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(r.seed),
                   r.hung_reason.c_str());
    }
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(r.seed), v.c_str());
    }
  }
  const OutcomeCounts oc = res.outcome_counts();
  std::printf("fleet: %d seeds x %d sessions (%s) on %d workers, %.2fs "
              "wall, chaos %s\n",
              res.stats.runs, cfg.fleet.sessions,
              to_string(cfg.fleet.discipline), res.stats.jobs,
              res.stats.wall_s, a.chaos ? "on" : "off");
  std::printf("outcomes: %d ok, %d violation, %d hung, %d crashed\n", oc.ok,
              oc.violation, oc.hung, oc.crashed);
  if (!a.csv_path.empty()) {
    if (!write_text_file(a.csv_path, res.sessions_csv())) {
      std::fprintf(stderr, "cannot write %s\n", a.csv_path.c_str());
      return 1;
    }
    std::printf("per-session results written to %s\n", a.csv_path.c_str());
  }
  if (!a.bundle_dir.empty() && oc.bad() > 0) {
    std::printf("fleet repro bundles for %d non-ok run%s written to %s\n",
                oc.bad(), oc.bad() == 1 ? "" : "s", a.bundle_dir.c_str());
  }
  return a.keep_going ? 0 : (oc.bad() == 0 ? 0 : 1);
}

// Replays a repro bundle through the identical campaign code path and
// verifies the stored failure reproduces bitwise (outcome + violation
// strings). Exit 0 only on an exact match.
int cmd_repro(const Args& a) {
  if (a.input.empty()) usage("repro needs a bundle path");
  ReproBundle bundle;
  std::string err;
  if (!load_repro_bundle(a.input, &bundle, &err)) {
    usage(("cannot load bundle " + a.input + ": " + err).c_str());
  }
  std::printf("repro: %s\n", a.input.c_str());
  std::printf("  seed %llu, scheme %s, %d chunks, recovery %s\n",
              static_cast<unsigned long long>(bundle.seed),
              to_string(bundle.spec.scheme), bundle.chunk_count,
              bundle.spec.recovery ? "on" : "off");
  std::printf("  fault plan (%zu events):\n", bundle.plan.events.size());
  for (const FaultEvent& e : bundle.plan.events) {
    std::printf("    %s\n", describe(e).c_str());
  }
  std::printf("  expected outcome %s, %zu violation%s\n",
              to_string(bundle.outcome), bundle.expected_violations.size(),
              bundle.expected_violations.size() == 1 ? "" : "s");

  const ReplayResult replay = replay_repro_bundle(bundle);
  std::printf("  replayed outcome %s, %zu violation%s\n",
              to_string(replay.run.outcome), replay.run.violations.size(),
              replay.run.violations.size() == 1 ? "" : "s");
  if (replay.matches) {
    std::printf("repro: reproduced\n");
    return 0;
  }
  for (const std::string& m : replay.mismatches) {
    std::fprintf(stderr, "mismatch: %s\n", m.c_str());
  }
  std::fprintf(stderr, "repro: did NOT reproduce\n");
  return 1;
}

// Delta-debugging minimizer: ddmin over the bundle's fault events, then
// duration/magnitude/horizon ladders, writing the minimized bundle and a
// deterministic shrink log.
int cmd_shrink(const Args& a) {
  if (a.input.empty()) usage("shrink needs a bundle path");
  ReproBundle bundle;
  std::string err;
  if (!load_repro_bundle(a.input, &bundle, &err)) {
    usage(("cannot load bundle " + a.input + ": " + err).c_str());
  }
  ShrinkConfig scfg;
  scfg.jobs = a.jobs;
  scfg.strict = a.strict;
  scfg.progress = stderr;
  const ShrinkResult res = shrink_repro_bundle(bundle, scfg);
  if (!res.reproduced) {
    std::fprintf(stderr,
                 "shrink: bundle does not reproduce a failure; nothing to "
                 "minimize\n");
    return 1;
  }
  const std::string out_path =
      a.out_path.empty() ? a.input + ".min.json" : a.out_path;
  if (!write_repro_bundle(res.minimized, out_path, &err)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 err.c_str());
    return 1;
  }
  if (!write_text_file(out_path + ".log", res.log)) {
    std::fprintf(stderr, "cannot write %s.log\n", out_path.c_str());
    return 1;
  }
  std::printf("shrink: %d -> %d events in %d steps (%d sim runs)\n",
              res.initial_events, res.final_events, res.steps, res.sim_runs);
  std::printf("minimized bundle written to %s (log: %s.log)\n",
              out_path.c_str(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  // parse() already rejected unknown commands with exit 2.
  return find_command(args.command)->handler(args);
}
