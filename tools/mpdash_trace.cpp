// mpdash_trace — causal-span trace analyzer.
//
// Loads a JSONL trace written by `mpdash_sim --trace`, reconstructs the
// per-chunk span timelines, renders per-layer latency waterfalls, and
// runs the deadline-miss attribution pass (scheduler-late vs
// fault-blackout vs retry-backoff vs bandwidth-shortfall). Traces
// without span records (older captures, golden fixtures) still load:
// the tool reports fault windows and record counts and exits 0.
//
//   mpdash_trace run.jsonl                    # summary + attribution
//   mpdash_trace run.jsonl --waterfall        # per-chunk latency bars
//   mpdash_trace run.jsonl --csv spans.csv    # one row per span
//   mpdash_trace run.jsonl --preferred-path 0 # Algorithm 1's cheap path

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/spans.h"
#include "analysis/trace_load.h"

using namespace mpdash;

namespace {

struct Args {
  std::string trace_path;
  std::string csv_path;
  bool waterfall = false;
  bool summary = true;
  int preferred_path = 0;
  int width = 72;  // waterfall bar columns
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: mpdash_trace <trace.jsonl> [options]\n"
               "  --waterfall          render per-chunk latency waterfalls\n"
               "  --csv <path>         write one CSV row per span\n"
               "  --preferred-path <n> Algorithm 1's always-on path "
               "(default 0 = WiFi)\n"
               "  --width <cols>       waterfall bar width (default 72)\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--waterfall") {
      a.waterfall = true;
    } else if (arg == "--csv") {
      a.csv_path = next();
    } else if (arg == "--preferred-path") {
      a.preferred_path = std::atoi(next().c_str());
    } else if (arg == "--width") {
      a.width = std::max(10, std::atoi(next().c_str()));
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else if (a.trace_path.empty()) {
      a.trace_path = arg;
    } else {
      usage("more than one trace file");
    }
  }
  if (a.trace_path.empty()) usage("no trace file given");
  return a;
}

void print_summary(const SpanModel& model,
                   const std::vector<TraceRecord>& trace) {
  std::map<std::string, std::size_t> by_type;
  for (const TraceRecord& r : trace) ++by_type[to_string(r.type)];
  std::printf("trace: %zu records (%zu outside any span), %.3f s\n",
              model.records, model.unspanned_records,
              to_seconds(model.trace_end));
  for (const auto& [name, count] : by_type) {
    std::printf("  %-16s %zu\n", name.c_str(), count);
  }
  std::printf("spans: %zu\n", model.spans.size());
  if (!model.faults.empty()) {
    std::printf("fault windows:\n");
    for (const FaultWindow& w : model.faults) {
      std::printf("  %-13s %s %-7s %8.3f s -> %8.3f s%s\n",
                  w.kind ? w.kind : "?",
                  w.server_scoped() ? "server" : "path",
                  w.server_scoped()
                      ? ""
                      : std::to_string(w.path_id).c_str(),
                  to_seconds(w.start), to_seconds(w.end),
                  w.closed ? "" : " (unclosed)");
    }
  }
}

void print_attribution(const SpanModel& model) {
  int misses = 0;
  for (const ChunkTimeline& t : model.spans) {
    if (t.cause != MissCause::kNone) ++misses;
  }
  std::printf("\ndeadline-miss attribution: %d missed of %zu spans\n",
              misses, model.spans.size());
  for (const auto& [cause, count] : attribution_counts(model)) {
    std::printf("  %-20s %d\n", to_string(cause), count);
  }
  if (misses == 0) return;
  std::printf("\n%-5s %-6s %-9s %-9s %-20s evidence\n", "span", "chunk",
              "elapsed", "deadline", "cause");
  for (const ChunkTimeline& t : model.spans) {
    if (t.cause == MissCause::kNone) continue;
    std::string evidence;
    if (t.http_timeouts > 0 || t.http_retries > 0) {
      evidence += "http " + std::to_string(t.http_timeouts) + " timeouts/" +
                  std::to_string(t.http_retries) + " retries; ";
    }
    if (t.chunk_retries > 0) {
      evidence += std::to_string(t.chunk_retries) + " downshifts; ";
    }
    if (t.stalls_started > 0) {
      evidence += std::to_string(t.stalls_started) + " stall(s); ";
    }
    if (t.sched_engaged && !t.costly_enabled) {
      evidence += "costly path never enabled; ";
    } else if (t.costly_enabled) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "costly enabled +%.2fs; ",
                    to_seconds(t.first_costly_enable - t.start));
      evidence += buf;
    }
    if (!t.closed()) evidence += "trace ended mid-flight; ";
    if (t.status) evidence += std::string(t.status);
    std::printf("%-5llu %-6d %8.3fs %8.3fs %-20s %s\n",
                static_cast<unsigned long long>(t.span), t.chunk,
                t.elapsed_s(), t.deadline_s, to_string(t.cause),
                evidence.c_str());
  }
}

// One bar per span: '.' = waiting for the scheduler/first byte, '=' =
// bytes flowing, '#' = the tail after the last byte (playback handoff),
// '!' marks the deadline column when it falls inside the bar.
void print_waterfall(const SpanModel& model, int width) {
  double max_elapsed = 0.0;
  for (const ChunkTimeline& t : model.spans) {
    max_elapsed = std::max(max_elapsed, t.elapsed_s());
  }
  if (max_elapsed <= 0.0) {
    std::printf("\nno spans to render\n");
    return;
  }
  std::printf("\nwaterfall (%.3fs full width):\n", max_elapsed);
  std::printf("%-5s %-6s %-9s %-6s bar\n", "span", "chunk", "status",
              "lvl");
  for (const ChunkTimeline& t : model.spans) {
    const double scale = static_cast<double>(width) / max_elapsed;
    auto col = [&](TimePoint at) {
      const double s = to_seconds(at - t.start);
      return std::clamp(static_cast<int>(s * scale), 0, width - 1);
    };
    const int len =
        std::max(1, std::clamp(static_cast<int>(t.elapsed_s() * scale), 1,
                               width));
    std::string bar(static_cast<std::size_t>(len), '.');
    if (t.have_bytes) {
      const int b0 = col(t.first_byte), b1 = col(t.last_byte);
      for (int i = b0; i <= b1 && i < len; ++i) bar[i] = '=';
      for (int i = b1 + 1; i < len; ++i) bar[i] = '#';
    }
    if (t.deadline_s > 0.0) {
      const int d = static_cast<int>(t.deadline_s * scale);
      if (d >= 0 && d < len) bar[d] = '!';
    }
    Bytes wifi = 0, other = 0;
    for (const auto& [path, bytes] : t.bytes_by_path) {
      (path == 0 ? wifi : other) += bytes;
    }
    std::printf("%-5llu %-6d %-9s %-6d %s",
                static_cast<unsigned long long>(t.span), t.chunk,
                t.status ? t.status : "open", t.level, bar.c_str());
    if (other > 0) {
      std::printf("  [%lld wifi / %lld costly]",
                  static_cast<long long>(wifi),
                  static_cast<long long>(other));
    }
    if (t.cause != MissCause::kNone) {
      std::printf("  <- %s", to_string(t.cause));
    }
    std::printf("\n");
  }
}

bool write_csv(const SpanModel& model, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f,
               "span,name,chunk,level,start_s,end_s,elapsed_s,deadline_s,"
               "status,missed,cause,requested_bytes,delivered_bytes,"
               "preferred_bytes,costly_bytes,http_timeouts,http_retries,"
               "backoff_s,chunk_retries,stalls\n");
  for (const ChunkTimeline& t : model.spans) {
    Bytes preferred = 0, costly = 0;
    for (const auto& [p, bytes] : t.bytes_by_path) {
      (p == 0 ? preferred : costly) += bytes;
    }
    std::fprintf(f,
                 "%llu,%s,%d,%d,%.9f,%.9f,%.9f,%.9f,%s,%d,%s,%lld,%lld,"
                 "%lld,%lld,%d,%d,%.9f,%d,%d\n",
                 static_cast<unsigned long long>(t.span),
                 t.name ? t.name : "", t.chunk, t.level,
                 to_seconds(t.start), to_seconds(t.end), t.elapsed_s(),
                 t.deadline_s, t.status ? t.status : "open",
                 t.cause != MissCause::kNone ? 1 : 0, to_string(t.cause),
                 static_cast<long long>(t.requested_bytes),
                 static_cast<long long>(t.delivered_bytes),
                 static_cast<long long>(preferred),
                 static_cast<long long>(costly), t.http_timeouts,
                 t.http_retries, t.backoff_s, t.chunk_retries,
                 t.stalls_started);
  }
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  std::vector<TraceRecord> trace;
  std::string err;
  if (!load_trace_jsonl(args.trace_path, &trace, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  SpanModel model = build_span_model(trace);
  attribute_misses(&model, args.preferred_path);

  print_summary(model, trace);
  if (!model.spans.empty()) print_attribution(model);
  if (args.waterfall) print_waterfall(model, args.width);
  if (!args.csv_path.empty()) {
    if (!write_csv(model, args.csv_path)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.csv_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu span rows to %s\n", model.spans.size(),
                args.csv_path.c_str());
  }
  return 0;
}
