// mpdash_trace — causal-span trace analyzer.
//
// Loads a JSONL trace written by `mpdash_sim --trace`, reconstructs the
// per-chunk span timelines, renders per-layer latency waterfalls or a
// Gantt/flame view, and runs the deadline-miss attribution pass
// (scheduler-late vs fault-blackout vs retry-backoff vs
// bandwidth-shortfall). Traces without span records (older captures,
// golden fixtures) still load: the tool reports fault windows and record
// counts and exits 0.
//
//   mpdash_trace run.jsonl                    # summary + attribution
//   mpdash_trace run.jsonl --waterfall        # per-chunk latency bars
//   mpdash_trace run.jsonl --flame            # Gantt bars + nested HTTP
//                                             # attempts / path activity
//   mpdash_trace run.jsonl --csv spans.csv    # one row per span
//   mpdash_trace run.jsonl --preferred-path 0 # Algorithm 1's cheap path
//
// Campaign roll-up mode aggregates attribution over many traces (files,
// directories, or a shell glob) into per-cause miss rates keyed by seed:
//
//   mpdash_trace rollup chaos_artifacts/            # scan dir for .jsonl
//   mpdash_trace rollup chaos.jsonl.* --csv roll.csv

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analysis/render.h"
#include "analysis/rollup.h"
#include "analysis/spans.h"
#include "analysis/trace_load.h"
#include "util/table.h"

using namespace mpdash;

namespace {

struct Args {
  bool rollup = false;
  std::vector<std::string> inputs;  // analyze: exactly one trace file
  std::string csv_path;
  bool waterfall = false;
  bool flame = false;
  int preferred_path = 0;
  int width = 72;  // waterfall/flame bar columns
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: mpdash_trace <trace.jsonl> [options]\n"
               "       mpdash_trace rollup <file|dir>... [options]\n"
               "  --waterfall          render per-chunk latency waterfalls\n"
               "  --flame              Gantt/flame view: span bars on a "
               "shared time axis\n"
               "                       with nested HTTP attempts and "
               "per-path activity\n"
               "  --csv <path>         analyze: one CSV row per span; "
               "rollup: per-seed\n"
               "                       per-cause miss rates\n"
               "  --preferred-path <n> Algorithm 1's always-on path "
               "(default 0 = WiFi)\n"
               "  --width <cols>       waterfall/flame width (default 72)\n"
               "  -h, --help           this text (exit 0)\n");
}

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n\n", msg.c_str());
  print_usage(stderr);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--waterfall") {
      a.waterfall = true;
    } else if (arg == "--flame") {
      a.flame = true;
    } else if (arg == "--csv") {
      a.csv_path = next();
    } else if (arg == "--preferred-path") {
      a.preferred_path = std::atoi(next().c_str());
    } else if (arg == "--width") {
      a.width = std::max(10, std::atoi(next().c_str()));
    } else if (arg == "--help" || arg == "-h") {
      // Explicit help is a success, not a usage error.
      print_usage(stdout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option " + arg);
    } else if (arg == "rollup" && a.inputs.empty() && !a.rollup) {
      a.rollup = true;
    } else if (a.rollup || a.inputs.empty()) {
      a.inputs.push_back(arg);
    } else {
      usage_error("more than one trace file (did you mean 'rollup'?)");
    }
  }
  if (a.inputs.empty()) {
    usage_error(a.rollup ? "rollup needs at least one file or directory"
                         : "no trace file given");
  }
  return a;
}

void print_summary(const SpanModel& model,
                   const std::vector<TraceRecord>& trace) {
  std::map<std::string, std::size_t> by_type;
  for (const TraceRecord& r : trace) ++by_type[to_string(r.type)];
  std::printf("trace: %zu records (%zu outside any span), %.3f s\n",
              model.records, model.unspanned_records,
              to_seconds(model.trace_end));
  for (const auto& [name, count] : by_type) {
    std::printf("  %-16s %zu\n", name.c_str(), count);
  }
  std::printf("spans: %zu\n", model.spans.size());
  if (!model.faults.empty()) {
    std::printf("fault windows:\n");
    for (const FaultWindow& w : model.faults) {
      std::printf("  %-13s %s %-7s %8.3f s -> %8.3f s%s\n",
                  w.kind ? w.kind : "?",
                  w.server_scoped() ? "server" : "path",
                  w.server_scoped()
                      ? ""
                      : std::to_string(w.path_id).c_str(),
                  to_seconds(w.start), to_seconds(w.end),
                  w.closed ? "" : " (unclosed)");
    }
  }
}

void print_attribution(const SpanModel& model) {
  int misses = 0;
  for (const ChunkTimeline& t : model.spans) {
    if (t.cause != MissCause::kNone) ++misses;
  }
  std::printf("\ndeadline-miss attribution: %d missed of %zu spans\n",
              misses, model.spans.size());
  for (const auto& [cause, count] : attribution_counts(model)) {
    std::printf("  %-20s %d\n", to_string(cause), count);
  }
  if (misses == 0) return;
  std::printf("\n%-5s %-6s %-9s %-9s %-20s evidence\n", "span", "chunk",
              "elapsed", "deadline", "cause");
  for (const ChunkTimeline& t : model.spans) {
    if (t.cause == MissCause::kNone) continue;
    std::string evidence;
    if (t.http_timeouts > 0 || t.http_retries > 0) {
      evidence += "http " + std::to_string(t.http_timeouts) + " timeouts/" +
                  std::to_string(t.http_retries) + " retries; ";
    }
    if (t.chunk_retries > 0) {
      evidence += std::to_string(t.chunk_retries) + " downshifts; ";
    }
    if (t.stalls_started > 0) {
      evidence += std::to_string(t.stalls_started) + " stall(s); ";
    }
    if (t.dominant_fault_kind != nullptr) {
      evidence += std::string(t.dominant_fault_kind) + " overlap; ";
    }
    if (t.sched_engaged && !t.costly_enabled) {
      evidence += "costly path never enabled; ";
    } else if (t.costly_enabled) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "costly enabled +%.2fs; ",
                    to_seconds(t.first_costly_enable - t.start));
      evidence += buf;
    }
    if (!t.closed()) evidence += "trace ended mid-flight; ";
    if (t.status) evidence += std::string(t.status);
    std::printf("%-5llu %-6d %8.3fs %8.3fs %-20s %s\n",
                static_cast<unsigned long long>(t.span), t.chunk,
                t.elapsed_s(), t.deadline_s, to_string(t.cause),
                evidence.c_str());
  }
}

// One bar per span: '.' = waiting for the scheduler/first byte, '=' =
// bytes flowing, '#' = the tail after the last byte (playback handoff),
// '!' marks the deadline column when it falls inside the bar.
void print_waterfall(const SpanModel& model, int width) {
  double max_elapsed = 0.0;
  for (const ChunkTimeline& t : model.spans) {
    max_elapsed = std::max(max_elapsed, t.elapsed_s());
  }
  if (max_elapsed <= 0.0) {
    std::printf("\nno spans to render\n");
    return;
  }
  std::printf("\nwaterfall (%.3fs full width):\n", max_elapsed);
  std::printf("%-5s %-6s %-9s %-6s bar\n", "span", "chunk", "status",
              "lvl");
  for (const ChunkTimeline& t : model.spans) {
    const double scale = static_cast<double>(width) / max_elapsed;
    auto col = [&](TimePoint at) {
      const double s = to_seconds(at - t.start);
      return std::clamp(static_cast<int>(s * scale), 0, width - 1);
    };
    const int len =
        std::max(1, std::clamp(static_cast<int>(t.elapsed_s() * scale), 1,
                               width));
    std::string bar(static_cast<std::size_t>(len), '.');
    if (t.have_bytes) {
      const int b0 = col(t.first_byte), b1 = col(t.last_byte);
      for (int i = b0; i <= b1 && i < len; ++i) bar[i] = '=';
      for (int i = b1 + 1; i < len; ++i) bar[i] = '#';
    }
    if (t.deadline_s > 0.0) {
      const int d = static_cast<int>(t.deadline_s * scale);
      if (d >= 0 && d < len) bar[d] = '!';
    }
    Bytes wifi = 0, other = 0;
    for (const auto& [path, bytes] : t.bytes_by_path) {
      (path == 0 ? wifi : other) += bytes;
    }
    std::printf("%-5llu %-6d %-9s %-6d %s",
                static_cast<unsigned long long>(t.span), t.chunk,
                t.status ? t.status : "open", t.level, bar.c_str());
    if (other > 0) {
      std::printf("  [%lld wifi / %lld costly]",
                  static_cast<long long>(wifi),
                  static_cast<long long>(other));
    }
    if (t.cause != MissCause::kNone) {
      std::printf("  <- %s", to_string(t.cause));
    }
    std::printf("\n");
  }
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

int run_analyze(const Args& args) {
  std::vector<TraceRecord> trace;
  std::string err;
  if (!load_trace_jsonl(args.inputs.front(), &trace, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  SpanModel model = build_span_model(trace);
  attribute_misses(&model, args.preferred_path);

  print_summary(model, trace);
  if (!model.spans.empty()) print_attribution(model);
  if (args.waterfall) print_waterfall(model, args.width);
  if (args.flame) {
    const FlameModel flame = build_flame_model(trace, model);
    std::printf("\n%s", render_flame(model, flame, args.width).c_str());
  }
  if (!args.csv_path.empty()) {
    if (!write_text_file(args.csv_path, spans_to_csv(model))) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.csv_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu span rows to %s\n", model.spans.size(),
                args.csv_path.c_str());
  }
  return 0;
}

// Expands rollup operands: directories contribute every contained
// ".jsonl"-named file. The combined list is ordered by roll-up key
// (numeric seeds first, in numeric order), so the CSV is identical no
// matter how the shell or the filesystem ordered the inputs — and
// identical across jobs-1 vs jobs-8 artifact sets whose base names
// differ but whose seed suffixes match.
std::vector<std::string> expand_rollup_inputs(
    const std::vector<std::string>& inputs, std::string* err) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (const auto& entry : fs::directory_iterator(in, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (name.find(".jsonl") != std::string::npos) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        *err = "cannot scan directory " + in + ": " + ec.message();
        return {};
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      *err = "no such file or directory: " + in;
      return {};
    }
  }
  std::sort(files.begin(), files.end(),
            [](const std::string& a, const std::string& b) {
              const std::string ka = rollup_source_key(a);
              const std::string kb = rollup_source_key(b);
              const bool na =
                  ka.find_first_not_of("0123456789") == std::string::npos;
              const bool nb =
                  kb.find_first_not_of("0123456789") == std::string::npos;
              if (na != nb) return na;  // numeric seeds first
              if (na && nb) {
                const unsigned long long va = std::strtoull(
                    ka.c_str(), nullptr, 10);
                const unsigned long long vb = std::strtoull(
                    kb.c_str(), nullptr, 10);
                if (va != vb) return va < vb;
              }
              if (ka != kb) return ka < kb;
              return a < b;
            });
  return files;
}

int run_rollup(const Args& args) {
  std::string err;
  const std::vector<std::string> files =
      expand_rollup_inputs(args.inputs, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr, "error: no .jsonl traces found\n");
    return 1;
  }

  std::vector<RollupRow> rows;
  rows.reserve(files.size());
  for (const std::string& path : files) {
    std::vector<TraceRecord> trace;
    if (!load_trace_jsonl(path, &trace, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    SpanModel model = build_span_model(trace);
    attribute_misses(&model, args.preferred_path);
    rows.push_back(rollup_span_model(model, rollup_source_key(path)));
  }

  std::vector<std::string> header = {"key", "spans", "misses", "miss%"};
  for (const MissCause c : kMissCausePrecedence) {
    header.push_back(to_string(c));
  }
  TextTable table(header);
  RollupRow total;
  total.key = "total";
  for (const MissCause c : kMissCausePrecedence) {
    total.counts.emplace_back(c, 0);
  }
  for (const RollupRow& row : rows) {
    std::vector<std::string> cells = {row.key, std::to_string(row.spans),
                                      std::to_string(row.misses),
                                      TextTable::pct(row.miss_rate(), 1)};
    for (const auto& [cause, count] : row.counts) {
      cells.push_back(std::to_string(count));
    }
    table.add_row(cells);
    total.spans += row.spans;
    total.misses += row.misses;
    for (auto& [cause, count] : total.counts) {
      count += count_for(row.counts, cause);
    }
  }
  std::vector<std::string> tcells = {total.key, std::to_string(total.spans),
                                     std::to_string(total.misses),
                                     TextTable::pct(total.miss_rate(), 1)};
  for (const auto& [cause, count] : total.counts) {
    tcells.push_back(std::to_string(count));
  }
  table.add_row(tcells);
  std::printf("rollup: %zu trace(s)\n%s", files.size(),
              table.render().c_str());

  if (!args.csv_path.empty()) {
    if (!write_text_file(args.csv_path, rollup_to_csv(rows))) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.csv_path.c_str());
      return 1;
    }
    std::printf("wrote %zu roll-up rows to %s\n", rows.size(),
                args.csv_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  return args.rollup ? run_rollup(args) : run_analyze(args);
}
